/**
 * @file
 * Timing/energy configuration tests — these pin the paper's constants.
 */

#include "common/timing.hh"

#include <gtest/gtest.h>

#include "common/hash_latency.hh"

namespace dewrite {
namespace {

TEST(TimingConfigTest, PaperDefaults)
{
    TimingConfig timing;
    EXPECT_EQ(timing.nvmRead, 75u * kNanoSecond);
    EXPECT_EQ(timing.nvmWrite, 300u * kNanoSecond);
    EXPECT_EQ(timing.aesLine, 96u * kNanoSecond);
    EXPECT_EQ(timing.crc32Line, 15u * kNanoSecond);
    EXPECT_EQ(timing.cyclePeriod, 500u); // 2 GHz.
}

TEST(TimingConfigTest, AsymmetryHolds)
{
    TimingConfig timing;
    // The read/write asymmetry DeWrite exploits: a dedup confirmation
    // read must be much cheaper than the write it eliminates.
    EXPECT_GE(timing.nvmWrite, 3 * timing.nvmRead);
}

TEST(TimingConfigTest, CyclesHelper)
{
    TimingConfig timing;
    EXPECT_EQ(timing.cycles(4), 2u * kNanoSecond);
}

TEST(EnergyConfigTest, PaperAesEnergy)
{
    EnergyConfig energy;
    EXPECT_EQ(energy.aesBlock, 5900u); // 5.9 nJ per 128-bit block.
    EXPECT_EQ(energy.aesLine(), 5900u * 16);
}

TEST(EnergyConfigTest, WriteDominatesRead)
{
    EnergyConfig energy;
    EXPECT_GT(energy.nvmWriteLine(), 5 * energy.nvmReadLine());
}

TEST(HashLatencyTest, TableIaValues)
{
    EXPECT_EQ(hashSpec(HashFunction::Crc32).latency, 15u * kNanoSecond);
    EXPECT_EQ(hashSpec(HashFunction::Md5).latency, 312u * kNanoSecond);
    EXPECT_EQ(hashSpec(HashFunction::Sha1).latency, 321u * kNanoSecond);
    EXPECT_EQ(hashSpec(HashFunction::Crc32).digestBits, 32u);
    EXPECT_EQ(hashSpec(HashFunction::Md5).digestBits, 128u);
    EXPECT_EQ(hashSpec(HashFunction::Sha1).digestBits, 160u);
    EXPECT_FALSE(hashSpec(HashFunction::Crc32).cryptographic);
    EXPECT_TRUE(hashSpec(HashFunction::Sha1).cryptographic);
    EXPECT_EQ(allHashSpecs().size(), 3u);
}

TEST(ValidateConfigDeathTest, RejectsInvertedAsymmetry)
{
    SystemConfig config;
    config.timing.nvmRead = config.timing.nvmWrite + 1;
    EXPECT_EXIT(validateConfig(config), testing::ExitedWithCode(1),
                "asymmetry");
}

TEST(ValidateConfigDeathTest, RejectsZeroBanks)
{
    SystemConfig config;
    config.timing.numBanks = 0;
    EXPECT_EXIT(validateConfig(config), testing::ExitedWithCode(1),
                "bank");
}

TEST(ValidateConfigTest, DefaultsPass)
{
    SystemConfig config;
    validateConfig(config); // Must not exit.
    SUCCEED();
}

} // namespace
} // namespace dewrite
