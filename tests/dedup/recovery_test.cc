/**
 * @file
 * Crash-consistency and recovery tests (Section V).
 */

#include "dedup/recovery.hh"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hh"
#include "dedup/dedup_engine.hh"
#include "nvm/nvm_device.hh"
#include "sim/system.hh"

namespace dewrite {
namespace {

class RecoveryTest : public ::testing::Test
{
  protected:
    RecoveryTest()
        : device_(config()), cme_(defaultAesKey()),
          metadata_(config(), device_, config().memory.numLines),
          engine_(config(), device_, metadata_, cme_)
    {
    }

    static const SystemConfig &
    config()
    {
        static SystemConfig instance = [] {
            SystemConfig c;
            c.memory.numLines = 1 << 14;
            return c;
        }();
        return instance;
    }

    void
    writeLine(LineAddr addr, const Line &data)
    {
        const DetectOutcome det = engine_.detect(data, now_, true);
        const WriteCommit commit = det.duplicate
            ? engine_.commitDuplicate(addr, det, det.done)
            : engine_.commitUnique(addr, data, det.hash, det.done,
                                   det.done);
        now_ = commit.done;
    }

    /** Mixed workload leaving rich shared/unique/rewritten state. */
    std::unordered_map<LineAddr, Line>
    runWorkload(std::uint64_t seed, int operations)
    {
        Rng rng(seed);
        std::unordered_map<LineAddr, Line> reference;
        std::vector<Line> pool;
        for (int op = 0; op < operations; ++op) {
            const LineAddr addr = rng.nextBelow(96);
            Line data;
            if (!pool.empty() && rng.chance(0.5)) {
                data = pool[rng.nextBelow(pool.size())];
            } else if (rng.chance(0.1)) {
                data = Line(); // Zero line.
            } else {
                data = Line::random(rng);
                pool.push_back(data);
            }
            writeLine(addr, data);
            reference[addr] = data;
        }
        return reference;
    }

    NvmDevice device_;
    CounterModeEngine cme_;
    MetadataCache metadata_;
    DedupEngine engine_;
    Time now_ = 0;
};

TEST_F(RecoveryTest, LiveEngineAuditsClean)
{
    runWorkload(201, 400);
    RecoveryManager recovery(engine_);
    const AuditReport report = recovery.audit();
    EXPECT_TRUE(report.consistent())
        << "missing=" << report.missingHashRecords
        << " stray=" << report.strayHashRecords
        << " refs=" << report.wrongReferences
        << " fsm=" << report.fsmMismatches;
    EXPECT_GT(report.hashRecordsChecked, 0u);
}

TEST_F(RecoveryTest, CrashDamageIsDetected)
{
    runWorkload(202, 300);
    RecoveryManager recovery(engine_);
    recovery.simulateCrashDamage();
    const AuditReport report = recovery.audit();
    EXPECT_FALSE(report.consistent());
    EXPECT_GT(report.missingHashRecords, 0u);
    EXPECT_GT(report.fsmMismatches, 0u);
}

TEST_F(RecoveryTest, RebuildRestoresConsistency)
{
    const auto reference = runWorkload(203, 400);
    RecoveryManager recovery(engine_);
    recovery.simulateCrashDamage();

    const RecoveryReport rebuilt = recovery.rebuild();
    EXPECT_GT(rebuilt.recordsRebuilt, 0u);
    EXPECT_EQ(rebuilt.recordsRebuilt, engine_.hashStore().size());
    EXPECT_GT(rebuilt.estimatedScanTime, 0u);

    EXPECT_TRUE(recovery.audit().consistent());

    // All data still reads back exactly.
    for (const auto &[addr, expected] : reference) {
        const ReadOutcome out = engine_.read(addr, now_);
        ASSERT_TRUE(out.valid);
        ASSERT_EQ(out.data, expected) << "addr " << addr;
    }
}

TEST_F(RecoveryTest, EngineKeepsDedupingAfterRecovery)
{
    runWorkload(204, 300);
    RecoveryManager recovery(engine_);
    recovery.simulateCrashDamage();
    recovery.rebuild();

    // New duplicates of recovered content are still eliminated.
    Rng rng(205);
    const Line data = Line::random(rng);
    writeLine(1, data);
    const std::uint64_t writes_before = device_.numWrites();
    writeLine(2, data);
    EXPECT_EQ(device_.numWrites(), writes_before); // Eliminated.
    EXPECT_EQ(engine_.read(2, now_).data, data);
}

TEST_F(RecoveryTest, RebuildIsIdempotentOnConsistentState)
{
    runWorkload(206, 300);
    RecoveryManager recovery(engine_);
    const std::size_t records_before = engine_.hashStore().size();
    const RecoveryReport report = recovery.rebuild();
    EXPECT_EQ(engine_.hashStore().size(), records_before);
    EXPECT_EQ(report.recordsRebuilt, records_before);
    EXPECT_TRUE(recovery.audit().consistent());
}

TEST_F(RecoveryTest, RebuildClampsOverpopularContent)
{
    // Push one content past the saturation cap, then recover: the
    // rebuilt record is restored at the cap, not beyond.
    const Line popular = Line::pattern(0x7777777777777777ULL);
    for (LineAddr addr = 0; addr < 300; ++addr)
        writeLine(addr, popular);

    RecoveryManager recovery(engine_);
    recovery.simulateCrashDamage();
    recovery.rebuild();

    bool found_cap = false;
    engine_.hashStore().forEach(
        [&](std::uint64_t, const HashEntry &entry) {
            EXPECT_LE(entry.reference, HashStore::kMaxReference);
            if (entry.reference == HashStore::kMaxReference)
                found_cap = true;
        });
    EXPECT_TRUE(found_cap);
    EXPECT_EQ(engine_.read(250, now_).data, popular);
}

} // namespace
} // namespace dewrite
