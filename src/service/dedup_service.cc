/**
 * @file
 * DedupService implementation.
 */

#include "service/dedup_service.hh"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/check.hh"
#include "controller/dewrite_controller.hh"
#include "dedup/metadata_auditor.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

namespace dewrite {

namespace {

/** Applies the shared defaults to every zero-valued option. */
ServiceOptions
resolved(const ServiceOptions &options)
{
    ServiceOptions opts = options;
    if (opts.shards == 0)
        opts.shards = serviceShards();
    if (opts.totalEvents == 0)
        opts.totalEvents = experimentEvents();
    if (opts.threads == 0)
        opts.threads = runnerThreads();
    DEWRITE_CHECK(opts.roundEvents >= 1,
                  "service rounds need at least one event");
    return opts;
}

} // namespace

std::vector<TenantSpec>
DedupService::resolveTenants(const ServiceOptions &options)
{
    const std::vector<AppProfile> &catalog = appCatalog();
    std::vector<TenantSpec> tenants;
    tenants.reserve(options.tenants);
    for (std::uint64_t t = 0; t < options.tenants; ++t) {
        TenantSpec spec;
        spec.profile = catalog[t % catalog.size()];
        // Uniform namespaces keep the router's fold exact whatever mix
        // of applications the tenants run.
        spec.profile.workingSetLines = options.linesPerTenant;
        spec.seed = appSeed(spec.profile) + t;
        tenants.push_back(std::move(spec));
    }
    return tenants;
}

DedupService::DedupService(const ServiceOptions &options)
    : options_(resolved(options)), totalEvents_(options_.totalEvents),
      tenants_(resolveTenants(options_)),
      router_(options_.shards, options_.tenants,
              options_.linesPerTenant),
      mux_(tenants_, options_.burstMax), shards_(options_.shards),
      pool_(options_.threads), skew_(options_.shards),
      sink_(obs::TelemetryConfig::fromEnv()),
      roundCounts_(options_.shards, 0)
{
    // Every shard of a run must agree on the batch capacity even if
    // the environment changes mid-run, so resolve it exactly once.
    const std::size_t batch = writeBatchSize();
    const SystemConfig config =
        router_.shardConfig(options_.base, totalEvents_);
    for (std::size_t k = 0; k < shards_.size(); ++k) {
        Shard &shard = shards_[k];
        shard.system = std::make_unique<System>(config, options_.scheme);
        shard.core = std::make_unique<ShardCore>(
            shard.system->config().timing, shard.system->controller(),
            batch);
        shard.telemetry = std::make_unique<obs::ShardTelemetry>(
            shards_.size(), k, options_.tenants,
            options_.linesPerTenant);
        shard.core->setTelemetry(shard.telemetry.get());
    }

    serviceRegistry_.addCounter("service.rounds", roundsIngested_,
                                "ingest/drain rounds executed");
    serviceRegistry_.addGauge(
        "service.shards",
        [this] { return static_cast<double>(shards_.size()); },
        "configured shard count");
    for (std::size_t k = 0; k < shards_.size(); ++k) {
        obs::MetricRegistry::Scope scope = serviceRegistry_.scope(
            "shard" + std::to_string(k) + ".ingest");
        scope.gauge("events_routed",
                    [this, k] {
                        return static_cast<double>(shards_[k].events);
                    },
                    "events the router sent this shard");
        shards_[k].core->former().registerMetrics(scope.scope("batch"));

        // Live latency/dedup gauges over the shard's telemetry. Read
        // by snapshot() only between rounds / after the run — never
        // concurrently with the owning drain task.
        const obs::ShardTelemetry *telemetry = shards_[k].telemetry.get();
        obs::MetricRegistry::Scope tele = serviceRegistry_.scope(
            "shard" + std::to_string(k) + ".telemetry");
        tele.gauge("write_latency.p50_ps",
                   [telemetry] {
                       return static_cast<double>(
                           telemetry->writeHist().p50());
                   },
                   "median serviced write latency (ps)");
        tele.gauge("write_latency.p99_ps",
                   [telemetry] {
                       return static_cast<double>(
                           telemetry->writeHist().p99());
                   },
                   "p99 serviced write latency (ps)");
        tele.gauge("read_latency.p99_ps",
                   [telemetry] {
                       return static_cast<double>(
                           telemetry->readHist().p99());
                   },
                   "p99 serviced read latency (ps)");
        tele.gauge("batch_span.p99_ps",
                   [telemetry] {
                       return static_cast<double>(
                           telemetry->batchHist().p99());
                   },
                   "p99 batch stage-to-commit span (ps)");
        tele.gauge("dup_ratio",
                   [telemetry] {
                       const std::uint64_t writes = telemetry->writes();
                       return writes ? static_cast<double>(
                                           telemetry->writesEliminated()) /
                               static_cast<double>(writes)
                                     : 0.0;
                   },
                   "eliminated / serviced writes so far");
    }

    // Shard-skew watch: the trigger inputs for the ROADMAP's
    // rebalancing item, refreshed every drain round.
    obs::MetricRegistry::Scope skew = serviceRegistry_.scope(
        "service.skew");
    skew.gauge("round_min",
               [this] {
                   return static_cast<double>(skew_.lastRound().min);
               },
               "fewest events any shard drained last round");
    skew.gauge("round_max",
               [this] {
                   return static_cast<double>(skew_.lastRound().max);
               },
               "most events any shard drained last round");
    skew.gauge("round_mean", [this] { return skew_.lastRound().mean; },
               "mean events/shard last round");
    skew.gauge("round_cv", [this] { return skew_.lastRound().cv; },
               "events/shard coefficient of variation, last round");
    skew.gauge("window_cv", [this] { return skew_.windowStats().cv; },
               "events/shard CV since the last telemetry emit");
    skew.gauge("total_cv", [this] { return skew_.totalStats().cv; },
               "events/shard CV over the whole run");
    skew.gauge("alert",
               [this] { return skew_.alert() ? 1.0 : 0.0; },
               "1 when the window CV exceeds kSkewAlertCv");
}

void
DedupService::emitTelemetry(bool final_frame)
{
    if (!sink_.enabled())
        return;
    obs::TelemetryFrame frame;
    frame.round = roundsIngested_.value();
    frame.totalEvents = produced_;
    frame.final = final_frame;
    frame.shards.reserve(shards_.size());
    frame.shardEvents.reserve(shards_.size());
    for (const Shard &shard : shards_) {
        frame.shards.push_back(shard.telemetry.get());
        frame.shardEvents.push_back(shard.events);
    }
    frame.skew = &skew_;
    frame.samples = registrySnapshot();
    sink_.emit(frame);
    skew_.resetWindow();
}

std::uint64_t
DedupService::fillRound(int side)
{
    // Single-threaded by design: the canonical order is defined by the
    // mux, and routing must preserve it per shard. The pool drains the
    // *previous* round concurrently, which is where the overlap (and
    // the speedup) comes from.
    for (Shard &shard : shards_)
        shard.buffers[side].clear();

    std::uint64_t produced = 0;
    MemEvent event;
    std::uint64_t tenant = 0;
    while (produced < options_.roundEvents &&
           produced_ < totalEvents_) {
        mux_.next(event, tenant);
        const std::uint64_t g = router_.globalKey(tenant, event.addr);
        const std::size_t shard = router_.shardOf(g);
        event.addr = router_.localAddr(g);
        shards_[shard].buffers[side].push_back(event);
        ++produced;
        ++produced_;
    }
    return produced;
}

// dewrite-analyze: root(shard-isolation)
ShardOutcome
DedupService::finalizeShard(std::size_t shard_index)
{
    Shard &shard = shards_[shard_index];
    ShardOutcome outcome;
    outcome.events = shard.events;

    RunResult run = shard.core->finish();
    run.totalEnergy = shard.system->totalEnergy();
    run.nvmLineWrites = shard.system->device().numWrites();
    run.nvmLineReads = shard.system->device().numReads();
    run.bitsProgrammed = shard.system->controller().dataBitsProgrammed();

    // The same end-of-run closure System::run performs: under
    // DEWRITE_AUDIT=1 every shard's metadata gets a full consistency
    // walk, independently of its siblings.
    if (auditEnabled()) {
        if (const auto *dewrite = dynamic_cast<const DeWriteController *>(
                &shard.system->controller())) {
            dewrite->auditNow("run-end");
        }
    }

    outcome.cell.app = "shard" + std::to_string(shard_index);
    outcome.cell.scheme = shard.system->controller().name();
    outcome.cell.run = run;
    shard.system->controller().fillStats(outcome.cell.stats);
    outcome.cell.metrics = shard.system->registry().snapshot();
    outcome.fingerprint = resultFingerprint(outcome.cell);
    return outcome;
}

ServiceResult
DedupService::run()
{
    // dewrite-analyze: allow(determinism) host wall-clock feeds only the
    // events/sec report, never simulated state
    const auto host_start = std::chrono::steady_clock::now();

    int side = 0;
    std::uint64_t filled = fillRound(side);
    while (filled > 0) {
        for (Shard &shard : shards_) {
            std::vector<MemEvent> &buffer = shard.buffers[side];
            if (buffer.empty())
                continue;
            shard.events += buffer.size();
            // One task per shard per round: the task is the only
            // toucher of its shard until wait(), so the drain needs no
            // synchronization at all.
            Shard *owned = &shard;
            pool_.submit([owned, side] {
                owned->core->feed(owned->buffers[side].data(),
                                  owned->buffers[side].size());
            });
        }
        roundsIngested_.increment();
        const int next = side ^ 1;
        // Overlap: produce the next round while the pool drains this
        // one, then the barrier hands the buffers over.
        const std::uint64_t next_filled = fillRound(next);
        pool_.wait();

        // Post-barrier: the drained buffers and every shard's
        // telemetry are quiescent, so the main thread may read them.
        for (std::size_t k = 0; k < shards_.size(); ++k)
            roundCounts_[k] = shards_[k].buffers[side].size();
        skew_.noteRound(roundCounts_.data(), roundCounts_.size());
        if (sink_.due(roundsIngested_.value()))
            emitTelemetry(/*final_frame=*/false);

        side = next;
        filled = next_filled;
    }

    ServiceResult result;
    result.shards.resize(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k) {
        pool_.submit([this, k, &result] {
            result.shards[k] = finalizeShard(k);
        });
    }
    pool_.wait();

    // Run-end snapshot: after finish() drained every staged tail, so
    // the final frame's histograms cover every serviced request.
    emitTelemetry(/*final_frame=*/true);

    result.totalEvents = produced_;
    result.hostSeconds =
        // dewrite-analyze: allow(determinism) host wall-clock feeds only the
        // events/sec report, never simulated state
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();
    result.eventsPerSecond = result.hostSeconds > 0.0
        ? static_cast<double>(result.totalEvents) / result.hostSeconds
        : 0.0;
    result.shardCount = shards_.size();
    result.threads = pool_.threadCount();
    return result;
}

std::vector<obs::MetricSample>
DedupService::registrySnapshot() const
{
    std::vector<obs::MetricSample> merged = serviceRegistry_.snapshot();
    for (std::size_t k = 0; k < shards_.size(); ++k) {
        const std::string prefix = "shard" + std::to_string(k) + ".";
        for (obs::MetricSample sample :
             shards_[k].system->registry().snapshot()) {
            sample.path = prefix + sample.path;
            merged.push_back(std::move(sample));
        }
    }
    std::sort(merged.begin(), merged.end(),
              [](const obs::MetricSample &a, const obs::MetricSample &b) {
                  return a.path < b.path;
              });
    return merged;
}

ExperimentResult
DedupService::runShardReference(const ServiceOptions &options,
                                std::size_t shard, std::uint64_t events)
{
    const ServiceOptions opts = resolved(options);
    const std::vector<TenantSpec> tenants = resolveTenants(opts);
    const ShardRouter router(opts.shards, opts.tenants,
                             opts.linesPerTenant);
    DEWRITE_CHECK(shard < router.shards(), "shard %zu of %zu", shard,
                  router.shards());

    ShardPartitionTrace trace(tenants, opts.burstMax, router, shard);
    System system(router.shardConfig(opts.base, opts.totalEvents),
                  opts.scheme);

    ExperimentResult cell;
    cell.app = "shard" + std::to_string(shard);
    cell.scheme = system.controller().name();
    cell.run = system.run(trace, events);
    system.controller().fillStats(cell.stats);
    cell.metrics = system.registry().snapshot();
    return cell;
}

} // namespace dewrite
