/**
 * @file
 * Collision-adversarial trace tests (DESIGN.md §5j): the generator
 * must forge genuine CRC-32 collisions, the weak-only detection mode
 * must corrupt data under them, and both confirming modes (read and
 * strong fingerprint) must survive the identical stream unharmed.
 */

#include "trace/collision_trace.hh"

#include <gtest/gtest.h>

#include "common/crc32.hh"
#include "common/rng.hh"
#include "controller/dewrite_controller.hh"

namespace dewrite {
namespace {

SystemConfig &
config()
{
    static SystemConfig instance = [] {
        SystemConfig c;
        c.memory.numLines = 1 << 14;
        return c;
    }();
    return instance;
}

AesKey
key()
{
    AesKey k{};
    k[3] = 0x5a;
    return k;
}

TEST(ForgeCrc32CollisionTest, ForgedLineCollidesAndDiffers)
{
    Rng rng(700);
    for (int i = 0; i < 128; ++i) {
        const Line base = Line::random(rng);
        const Line forged = forgeCrc32Collision(base, rng);
        ASSERT_NE(forged, base) << "iteration " << i;
        ASSERT_EQ(crc32(forged), crc32(base)) << "iteration " << i;
    }
}

TEST(ForgeCrc32CollisionTest, WorksOnDegenerateContents)
{
    Rng rng(701);
    for (const Line &base : { Line(), Line::filled(0xff) }) {
        const Line forged = forgeCrc32Collision(base, rng);
        EXPECT_NE(forged, base);
        EXPECT_EQ(crc32(forged), crc32(base));
    }
}

TEST(CollisionWorkloadTest, StreamForgesCollisionsDeterministically)
{
    CollisionTraceConfig trace_config;
    CollisionWorkload a(trace_config, 7);
    CollisionWorkload b(trace_config, 7);
    MemEvent ea;
    MemEvent eb;
    for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(a.next(ea));
        ASSERT_TRUE(b.next(eb));
        ASSERT_EQ(ea.addr, eb.addr);
        ASSERT_EQ(ea.data, eb.data);
    }
    EXPECT_GT(a.collisionsForged(), 0u);
    EXPECT_EQ(a.collisionsForged(), b.collisionsForged());
}

/**
 * Replays the same adversarial stream through a controller configured
 * with @p policy and counts read-back mismatches against the
 * generator's expected image.
 */
struct ReplayResult
{
    std::uint64_t corrupted = 0;
    std::uint64_t checked = 0;
    std::uint64_t unsafeCorruptions = 0;
    std::uint64_t confirmReadsAvoided = 0;
};

ReplayResult
replay(DetectPolicy policy, int writes)
{
    DeWriteController::Options options;
    options.detect = policy;
    NvmDevice device(config());
    DeWriteController ctrl(config(), device, key(), options);

    CollisionTraceConfig trace_config;
    CollisionWorkload workload(trace_config, 99);
    MemEvent event;
    Time now = 0;
    for (int i = 0; i < writes; ++i) {
        workload.next(event);
        now += ctrl.write(event.addr, event.data, now).latency;
    }

    ReplayResult result;
    for (LineAddr addr : workload.writtenAddrs()) {
        ++result.checked;
        if (ctrl.read(addr, now).data != *workload.expected(addr))
            ++result.corrupted;
    }
    result.unsafeCorruptions = ctrl.engine().unsafeCorruptions();
    result.confirmReadsAvoided = ctrl.engine().confirmReadsAvoided();
    return result;
}

TEST(CollisionWorkloadTest, WeakOnlyModeSilentlyCorrupts)
{
    const ReplayResult r = replay(DetectPolicy::WeakOnly, 600);
    // Trusting the 32-bit hash merges the forged lines into their
    // victims: the engine notices (the corruption counter is exactly
    // the point of the ablation) and read-backs disagree with the
    // stream's expected image.
    EXPECT_GT(r.unsafeCorruptions, 0u);
    EXPECT_GT(r.corrupted, 0u);
}

TEST(CollisionWorkloadTest, ConfirmReadModeSurvivesForgedCollisions)
{
    const ReplayResult r = replay(DetectPolicy::ConfirmRead, 600);
    EXPECT_GT(r.checked, 0u);
    EXPECT_EQ(r.corrupted, 0u);
    EXPECT_EQ(r.unsafeCorruptions, 0u);
}

TEST(CollisionWorkloadTest, WeakStrongModeSurvivesForgedCollisions)
{
    const ReplayResult r = replay(DetectPolicy::WeakStrong, 600);
    EXPECT_GT(r.checked, 0u);
    EXPECT_EQ(r.corrupted, 0u);
    EXPECT_EQ(r.unsafeCorruptions, 0u);
    // The attack repeatedly re-probes the anchors, so the cached
    // fingerprints must actually engage (otherwise this test would
    // only prove the confirm-read fallback).
    EXPECT_GT(r.confirmReadsAvoided, 0u);
}

} // namespace
} // namespace dewrite
