/**
 * @file
 * WriteTracer implementation.
 */

#include "obs/trace_ring.hh"

#include "common/logging.hh"

namespace dewrite::obs {

const char *
writePathName(WritePath path)
{
    switch (path) {
      case WritePath::Direct:
        return "direct";
      case WritePath::Parallel:
        return "parallel";
    }
    panic("bad write path");
}

const char *
counterHomeName(CounterHome home)
{
    switch (home) {
      case CounterHome::None:
        return "none";
      case CounterHome::Mapping:
        return "mapping";
      case CounterHome::InvertedHash:
        return "inverted-hash";
      case CounterHome::Overflow:
        return "overflow";
    }
    panic("bad counter home");
}

WriteTracer::WriteTracer(const TraceConfig &config)
    : epochEvents_(config.epochEvents ? config.epochEvents : 1)
{
    if constexpr (compiledIn())
        ring_.resize(config.capacity);
}

#if DEWRITE_TRACE

void
WriteTracer::record(const WriteEvent &event)
{
    WriteEvent stamped = event;
    stamped.seq = recorded_++;

    if (!ring_.empty()) {
        ring_[head_] = stamped;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        if (held_ < ring_.size())
            ++held_;
    }

    ++current_.events;
    if (stamped.duplicate)
        ++current_.duplicates;
    if (stamped.predictedDup >= 0) {
        ++current_.predictions;
        if ((stamped.predictedDup != 0) == stamped.duplicate)
            ++current_.correctPredictions;
    }
    if (stamped.home == CounterHome::Overflow)
        ++current_.overflows;

    if (current_.events == epochEvents_) {
        // dewrite-analyze: allow(hot-path-purity) once per epoch (thousands of events), not per event
        epochs_.push_back(current_);
        current_ = EpochSnapshot{};
        current_.epoch = epochs_.size();
    }
}

#endif // DEWRITE_TRACE

const WriteEvent &
WriteTracer::event(std::size_t i) const
{
    if (i >= held_)
        panic("trace event index %zu out of range (%zu held)", i, held_);
    // head_ points one past the newest; the oldest retained event sits
    // at head_ when the ring has wrapped, at 0 otherwise.
    const std::size_t base = held_ == ring_.size() ? head_ : 0;
    std::size_t pos = base + i;
    if (pos >= ring_.size())
        pos -= ring_.size();
    return ring_[pos];
}

} // namespace dewrite::obs
