/**
 * @file
 * Exporters for WriteTracer contents.
 *
 * writeChromeTrace() emits the Chrome trace-event JSON format, which
 * Perfetto (https://ui.perfetto.dev) and chrome://tracing load
 * directly: every retained write is a complete ("X") slice on a track
 * per encryption path, with the pipeline decisions in args. Simulated
 * picoseconds map to trace microseconds.
 *
 * writeEpochSeries() emits the epoch time series (write reduction and
 * prediction accuracy per epoch) as a JSON array, the machine-readable
 * companion to the paper's aggregate claims.
 */

#ifndef DEWRITE_OBS_TRACE_EXPORT_HH
#define DEWRITE_OBS_TRACE_EXPORT_HH

#include <string>

#include "obs/trace_ring.hh"

namespace dewrite::obs {

class JsonWriter;

/**
 * Writes a complete Chrome/Perfetto trace document for @p tracer.
 * @p label names the process track (e.g. "bzip2/dewrite-predicted").
 * The writer must be positioned at the top level (no open containers).
 */
void writeChromeTrace(const WriteTracer &tracer, JsonWriter &w,
                      const std::string &label);

/**
 * Writes the epoch time series as a JSON array of objects (completed
 * epochs first, then the in-progress tail epoch if non-empty).
 */
void writeEpochSeries(const WriteTracer &tracer, JsonWriter &w);

} // namespace dewrite::obs

#endif // DEWRITE_OBS_TRACE_EXPORT_HH
