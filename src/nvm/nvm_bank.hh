/**
 * @file
 * A single NVM bank's timing state.
 *
 * A bank serves one access at a time; an access issued while the bank
 * is busy queues until the in-flight access finishes. This is the
 * mechanism behind the paper's read/write interference argument: a
 * 300 ns write occupies its bank and delays every later read or write
 * to that bank, so each *eliminated* duplicate write also shortens the
 * waiting time of the requests behind it.
 */

#ifndef DEWRITE_NVM_NVM_BANK_HH
#define DEWRITE_NVM_NVM_BANK_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace dewrite {

/** Outcome of scheduling one access on a bank. */
struct BankService
{
    Time start;      //!< When the bank began the access.
    Time complete;   //!< When the access finished.
    Time queueDelay; //!< start - issue time.
};

class NvmBank
{
  public:
    /**
     * Schedules an access issued at @p now taking @p duration.
     * The bank is busy until the returned completion time.
     */
    BankService service(Time now, Time duration);

    /** Time the bank becomes idle. */
    Time busyUntil() const { return busyUntil_; }

    /** Total accesses served. */
    std::uint64_t accesses() const { return accesses_; }

    /** Total time accesses spent waiting for this bank. */
    Time totalQueueDelay() const { return totalQueueDelay_; }

    /** Total time this bank spent servicing accesses. */
    Time totalBusyTime() const { return totalBusyTime_; }

  private:
    Time busyUntil_ = 0;
    Time totalQueueDelay_ = 0;
    Time totalBusyTime_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace dewrite

#endif // DEWRITE_NVM_NVM_BANK_HH
