/**
 * @file
 * SyntheticWorkload and WorstCaseWorkload implementation.
 */

#include "trace/trace_gen.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dewrite {

SyntheticWorkload::SyntheticWorkload(const AppProfile &profile,
                                     std::uint64_t seed,
                                     LineAddr addr_base,
                                     std::shared_ptr<SharedPhase> phase)
    : profile_(profile), rng_(seed), addrBase_(addr_base),
      phase_(phase ? std::move(phase) : std::make_shared<SharedPhase>())
{
    if (profile.workingSetLines == 0)
        fatal("workload '%s' has an empty working set",
              profile.name.c_str());
    if (profile.glitchRate < 0.0 || profile.glitchRate >= 0.5)
        fatal("glitch rate must be in [0, 0.5)");
    // Glitches pull the realized duplicate fraction toward 1/2, so the
    // phase-level probability compensates to keep the app's target:
    // target = p*(1-g) + (1-p)*g  =>  p = (target-g)/(1-2g).
    const double g = profile.glitchRate;
    phaseDupProb_ = std::clamp((profile.dupTarget - g) / (1.0 - 2.0 * g),
                               0.0, 1.0);
    // The generator only touches [addrBase_, addrBase_ + workingSet);
    // size the mirror once so no growth happens while generating.
    image_.reserve(addr_base + profile.workingSetLines);
    dupWritten_.reserve(addr_base + profile.workingSetLines);
    writtenAddrs_.reserve(profile.workingSetLines);
}

SyntheticWorkload::SyntheticWorkload(const AppProfile &profile,
                                     std::uint64_t seed)
    : SyntheticWorkload(profile, seed, 0, nullptr)
{
}

LineAddr
SyntheticWorkload::sampleWrittenAddr(double theta)
{
    // Recency-skewed: rank 0 = most recently first-written address.
    // The Zipf tail makes a few contents massively shared (Figure 7)
    // while keeping most reference counts tiny.
    const std::uint64_t n = writtenAddrs_.size();
    const std::uint64_t rank = rng_.nextZipf(n, theta);
    return writtenAddrs_[n - 1 - rank];
}

LineAddr
SyntheticWorkload::sampleReadAddr()
{
    // Flatter skew than writes (the CPU caches absorb the hottest
    // lines) and a strong preference for unique-content lines (bulk
    // zero fills and copies are rarely read back from memory).
    LineAddr addr = sampleWrittenAddr(profile_.popularityTheta * 0.5);
    for (int retry = 0; retry < 3 && dupWritten_.contains(addr); ++retry)
        addr = sampleWrittenAddr(profile_.popularityTheta * 0.5);
    return addr;
}

LineAddr
SyntheticWorkload::chooseWriteAddr()
{
    const bool working_set_full =
        writtenAddrs_.size() >= profile_.workingSetLines;
    if (!writtenAddrs_.empty() &&
        (working_set_full || rng_.chance(0.6))) {
        return sampleWrittenAddr(profile_.popularityTheta);
    }
    return addrBase_ + nextFreshAddr_++;
}

Line
SyntheticWorkload::makeUniqueContent(LineAddr addr)
{
    // A unique write either initializes fresh memory (sparse content:
    // mostly-zero with a few live words, as allocators and memset-like
    // initialization produce) or overwrites dense in-use data. Either
    // way a monotonically increasing stamp guarantees the content never
    // matches any line in memory.
    Line content;
    if (rng_.chance(0.5)) {
        content = Line::random(rng_);
    } else {
        const unsigned live = 1 + static_cast<unsigned>(rng_.nextBelow(6));
        for (unsigned i = 0; i < live; ++i) {
            content.setWord64(rng_.nextBelow(kLineSize / 8),
                              rng_.next64());
        }
    }
    content.setWord64(0, ++uniqueStamp_);
    content.setWord64(1, addr * 0x9e3779b97f4a7c15ULL);
    return content;
}

bool
SyntheticWorkload::next(MemEvent &event)
{
    event.instGap = rng_.nextExponential(profile_.instGapMean);

    const bool is_write =
        writtenAddrs_.empty() || rng_.chance(profile_.writeFraction);

    if (!is_write) {
        event.isWrite = false;
        event.addr = sampleReadAddr();
        return true;
    }

    // Sticky Markov duplicate-state process: with probability
    // statePersistence keep the previous phase, otherwise resample from
    // the app's stationary duplicate fraction. The phase is shared
    // across co-running instances (program-wide phases). On top of the
    // phase, isolated glitches deviate for a single write — they are
    // what makes the majority-of-3 predictor beat last-state
    // prediction (Figure 4).
    bool phase_dup;
    if (phase_->started && !writtenAddrs_.empty() &&
        rng_.chance(profile_.statePersistence)) {
        phase_dup = phase_->prevDup;
    } else {
        phase_dup = rng_.chance(phaseDupProb_);
    }
    bool dup = rng_.chance(profile_.glitchRate) ? !phase_dup : phase_dup;
    if (writtenAddrs_.empty()) {
        phase_dup = false;
        dup = false;
    }

    event.isWrite = true;
    if (dup) {
        if (rng_.chance(profile_.zeroGivenDup)) {
            event.data = Line();
        } else {
            // Copy a live non-zero content; retrying on zeros keeps
            // zeroGivenDup the sole control of the zero-line share
            // (zeros would otherwise snowball through resampling).
            event.data =
                *image_.find(sampleWrittenAddr(profile_.popularityTheta));
            for (int retry = 0; retry < 4 && event.data.isZero();
                 ++retry) {
                event.data = *image_.find(
                    sampleWrittenAddr(profile_.popularityTheta));
            }
        }
        event.addr = chooseWriteAddr();
    } else {
        event.addr = chooseWriteAddr();
        const Line *existing = image_.find(event.addr);
        if (existing && rng_.chance(profile_.rewriteFraction)) {
            // Word-sparse rewrite of live data — the access pattern
            // DEUCE's partial re-encryption exploits. A line's hot
            // words are fixed per address (the same counter/pointer
            // fields change on every rewrite), so the modified set a
            // DEUCE epoch accumulates stays small.
            event.data = *existing;
            const unsigned words =
                1 + static_cast<unsigned>(event.addr %
                                          profile_.mutateWordsMax);
            for (unsigned i = 0; i < words; ++i) {
                const std::size_t hot =
                    (event.addr * 0x9e3779b9ULL + i * 7) %
                    (kLineSize / 8);
                event.data.setWord64(hot, rng_.next64());
            }
            event.data.setWord64(2, ++uniqueStamp_);
        } else {
            event.data = makeUniqueContent(event.addr);
        }
    }

    if (!image_.isWritten(event.addr))
        // dewrite-analyze: allow(hot-path-purity) workload synthesis is setup/driver
        // code; the hot edge is a member-name over-approximation
        writtenAddrs_.push_back(event.addr);
    image_.refForWrite(event.addr) = event.data;
    if (dup)
        dupWritten_.insert(event.addr);
    else
        dupWritten_.erase(event.addr);
    phase_->prevDup = phase_dup;
    phase_->started = true;
    return true;
}

WorstCaseWorkload::WorstCaseWorkload(std::uint64_t working_set_lines,
                                     double inst_gap_mean,
                                     std::uint64_t seed)
    : workingSet_(working_set_lines), instGapMean_(inst_gap_mean),
      rng_(seed)
{
    if (working_set_lines == 0)
        fatal("worst-case workload needs a nonzero working set");
}

bool
WorstCaseWorkload::next(MemEvent &event)
{
    event.instGap = rng_.nextExponential(instGapMean_);
    event.addr = position_;

    if (writePhase_) {
        event.isWrite = true;
        event.data = Line::random(rng_);
        event.data.setWord64(0, ++stamp_); // Never a duplicate.
    } else {
        event.isWrite = false;
    }

    if (++position_ == workingSet_) {
        position_ = 0;
        writePhase_ = !writePhase_;
    }
    return true;
}

} // namespace dewrite
