/**
 * @file
 * SetAssocCache unit tests.
 */

#include "cache/set_assoc_cache.hh"

#include <gtest/gtest.h>

namespace dewrite {
namespace {

TEST(SetAssocCacheTest, MissThenHit)
{
    SetAssocCache cache(64, 8);
    EXPECT_FALSE(cache.access(1, false));
    cache.insert(1, false);
    EXPECT_TRUE(cache.access(1, false));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCacheTest, CapacityRounding)
{
    SetAssocCache cache(10, 4);
    EXPECT_EQ(cache.numSets(), 2u);
    EXPECT_EQ(cache.numBlocks(), 8u);
}

TEST(SetAssocCacheTest, LruEvictsOldest)
{
    // One set of two ways: the third insert evicts the least recently
    // used of the first two.
    SetAssocCache cache(2, 2);
    cache.insert(10, false);
    cache.insert(20, false);
    cache.access(10, false); // 20 becomes LRU.
    const CacheEviction eviction = cache.insert(30, false);
    ASSERT_TRUE(eviction.valid);
    EXPECT_EQ(eviction.key, 20u);
    EXPECT_TRUE(cache.contains(10));
    EXPECT_TRUE(cache.contains(30));
    EXPECT_FALSE(cache.contains(20));
}

TEST(SetAssocCacheTest, DirtyPropagatesToEviction)
{
    SetAssocCache cache(1, 1);
    cache.insert(1, false);
    cache.access(1, /*make_dirty=*/true);
    const CacheEviction eviction = cache.insert(2, false);
    ASSERT_TRUE(eviction.valid);
    EXPECT_TRUE(eviction.dirty);
    EXPECT_EQ(cache.dirtyEvictions(), 1u);
}

TEST(SetAssocCacheTest, CleanEvictionIsNotDirty)
{
    SetAssocCache cache(1, 1);
    cache.insert(1, false);
    const CacheEviction eviction = cache.insert(2, false);
    ASSERT_TRUE(eviction.valid);
    EXPECT_FALSE(eviction.dirty);
    EXPECT_EQ(cache.dirtyEvictions(), 0u);
}

TEST(SetAssocCacheTest, InsertDirtyDirectly)
{
    SetAssocCache cache(1, 1);
    cache.insert(5, /*dirty=*/true);
    const CacheEviction eviction = cache.insert(6, false);
    EXPECT_TRUE(eviction.dirty);
}

TEST(SetAssocCacheTest, InvalidateRemovesEntry)
{
    SetAssocCache cache(8, 2);
    cache.insert(3, true);
    const CacheEviction eviction = cache.invalidate(3);
    EXPECT_TRUE(eviction.valid);
    EXPECT_TRUE(eviction.dirty);
    EXPECT_FALSE(cache.contains(3));
    EXPECT_FALSE(cache.invalidate(3).valid);
}

TEST(SetAssocCacheTest, HitRateComputation)
{
    SetAssocCache cache(8, 2);
    cache.insert(1, false);
    cache.access(1, false);
    cache.access(1, false);
    cache.access(2, false); // Miss.
    EXPECT_DOUBLE_EQ(cache.hitRate(), 2.0 / 3.0);
}

TEST(SetAssocCacheTest, DirtyKeysAndCleanAll)
{
    SetAssocCache cache(8, 4);
    cache.insert(1, true);
    cache.insert(2, false);
    cache.insert(3, true);
    auto dirty = cache.dirtyKeys();
    std::sort(dirty.begin(), dirty.end());
    ASSERT_EQ(dirty.size(), 2u);
    EXPECT_EQ(dirty[0], 1u);
    EXPECT_EQ(dirty[1], 3u);
    cache.cleanAll();
    EXPECT_TRUE(cache.dirtyKeys().empty());
}

TEST(SetAssocCacheTest, FlushEmptiesContents)
{
    SetAssocCache cache(8, 2);
    cache.insert(1, false);
    cache.flush();
    EXPECT_FALSE(cache.contains(1));
}

TEST(SetAssocCacheDeathTest, DoubleInsertPanics)
{
    SetAssocCache cache(8, 2);
    cache.insert(1, false);
    EXPECT_DEATH(cache.insert(1, false), "already resident");
}

TEST(SetAssocCacheTest, ManyKeysRespectCapacity)
{
    SetAssocCache cache(64, 8);
    for (std::uint64_t key = 0; key < 1000; ++key)
        cache.insert(key, false);
    std::size_t resident = 0;
    for (std::uint64_t key = 0; key < 1000; ++key)
        resident += cache.contains(key);
    EXPECT_EQ(resident, 64u);
}

} // namespace
} // namespace dewrite
