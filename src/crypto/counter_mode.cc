/**
 * @file
 * Counter-mode engine implementation.
 */

#include "crypto/counter_mode.hh"

#include <algorithm>
#include <cstring>

namespace dewrite {

CounterModeEngine::CounterModeEngine(const AesKey &key) : cipher_(key)
{
}

Line
CounterModeEngine::makePad(LineAddr addr, std::uint64_t counter) const
{
    // Seed block: | addr (8B) | counter (7B) | block index (1B) |.
    // The counter is at most 28 bits in the stored metadata, so seven
    // bytes never truncate it. All sixteen seeds are independent, so
    // they are encrypted as one batch (pipelined on AES-NI).
    std::array<AesBlock, kAesBlocksPerLine> seeds;
    AesBlock base{};
    std::memcpy(base.data(), &addr, 8);
    std::memcpy(base.data() + 8, &counter, 7);
    for (std::size_t block = 0; block < kAesBlocksPerLine; ++block) {
        seeds[block] = base;
        seeds[block][15] = static_cast<std::uint8_t>(block);
    }

    Line pad;
    std::array<AesBlock, kAesBlocksPerLine> otps;
    cipher_.encryptBlocks(seeds.data(), otps.data(), kAesBlocksPerLine);
    std::memcpy(pad.data(), otps.data(), kAesBlocksPerLine * kAesBlockSize);
    return pad;
}

void
CounterModeEngine::makePads(const PadRequest *requests, std::size_t count,
                            Line *pads) const
{
    // Seeds for up to eight lines (128 blocks) are staged together so
    // the AES-NI kernel's eight-wide interleave runs over one long run
    // of independent blocks. Per-block output is identical to
    // makePad(); only the grouping changes.
    constexpr std::size_t kChunkLines = 8;
    std::array<AesBlock, kChunkLines * kAesBlocksPerLine> seeds;
    std::array<AesBlock, kChunkLines * kAesBlocksPerLine> otps;

    while (count > 0) {
        const std::size_t chunk = std::min(count, kChunkLines);
        for (std::size_t i = 0; i < chunk; ++i) {
            AesBlock base{};
            std::memcpy(base.data(), &requests[i].addr, 8);
            std::memcpy(base.data() + 8, &requests[i].counter, 7);
            AesBlock *line_seeds = seeds.data() + i * kAesBlocksPerLine;
            for (std::size_t block = 0; block < kAesBlocksPerLine;
                 ++block) {
                line_seeds[block] = base;
                line_seeds[block][15] =
                    static_cast<std::uint8_t>(block);
            }
        }
        cipher_.encryptBlocks(seeds.data(), otps.data(),
                              chunk * kAesBlocksPerLine);
        for (std::size_t i = 0; i < chunk; ++i) {
            std::memcpy(pads[i].data(),
                        otps.data() + i * kAesBlocksPerLine,
                        kAesBlocksPerLine * kAesBlockSize);
        }
        requests += chunk;
        pads += chunk;
        count -= chunk;
    }
}

Line
CounterModeEngine::encryptLine(const Line &plaintext, LineAddr addr,
                               std::uint64_t counter) const
{
    return plaintext ^ makePad(addr, counter);
}

Line
CounterModeEngine::decryptLine(const Line &ciphertext, LineAddr addr,
                               std::uint64_t counter) const
{
    // XOR is an involution: decryption is encryption with the same pad.
    return ciphertext ^ makePad(addr, counter);
}

} // namespace dewrite
