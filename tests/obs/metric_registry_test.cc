/**
 * @file
 * MetricRegistry tests: registration, scopes, snapshots, the legacy
 * StatSet view, and wiring-bug panics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/stats.hh"
#include "obs/json_writer.hh"
#include "obs/metric_registry.hh"

namespace dewrite::obs {
namespace {

TEST(MetricRegistryTest, ReadsEachKind)
{
    Counter counter;
    counter.increment(7);
    Accumulator acc;
    acc.add(2.0);
    acc.add(4.0);
    Histogram histo(4, 1.0);
    histo.add(0.5);
    histo.add(1.5);

    MetricRegistry registry;
    registry.addCounter("a.counter", counter, "events");
    registry.addGauge("a.gauge", [] { return 0.25; }, "ratio");
    registry.addAccumulator("a.acc", acc, "latency");
    registry.addHistogram("a.histo", histo, "distribution");

    EXPECT_EQ(registry.size(), 4u);
    EXPECT_EQ(registry.find("a.counter")->read(), 7.0);
    EXPECT_EQ(registry.find("a.gauge")->read(), 0.25);
    EXPECT_EQ(registry.find("a.acc")->read(), 3.0);  // Mean.
    EXPECT_EQ(registry.find("a.histo")->read(), 2.0); // Total samples.
}

TEST(MetricRegistryTest, ReadsAreLiveNotCopies)
{
    Counter counter;
    MetricRegistry registry;
    registry.addCounter("c", counter, "events");
    EXPECT_EQ(registry.find("c")->read(), 0.0);
    counter.increment(3);
    EXPECT_EQ(registry.find("c")->read(), 3.0);
}

TEST(MetricRegistryTest, ScopesPrefixAndNest)
{
    Counter counter;
    MetricRegistry registry;
    MetricRegistry::Scope cache = registry.scope("cache");
    cache.scope("metadata").counter("fill_reads", counter, "fills");
    EXPECT_TRUE(registry.has("cache.metadata.fill_reads"));
    EXPECT_FALSE(registry.has("fill_reads"));
}

TEST(MetricRegistryTest, SnapshotIsPathSorted)
{
    Counter c1, c2;
    MetricRegistry registry;
    registry.addCounter("z.last", c1, "");
    registry.addCounter("a.first", c2, "");
    registry.addGauge("m.middle", [] { return 1.0; }, "");

    const std::vector<MetricSample> snap = registry.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end(),
                               [](const auto &a, const auto &b) {
                                   return a.path < b.path;
                               }));
    EXPECT_EQ(snap.front().path, "a.first");
    EXPECT_EQ(snap.back().path, "z.last");
}

TEST(MetricRegistryTest, FillStatSetExportsOnlyLegacyEntries)
{
    Counter with_legacy, without;
    with_legacy.increment(5);
    MetricRegistry registry;
    registry.addCounter("controller.dedup.duplicate_commits",
                        with_legacy, "", "duplicate_commits");
    registry.addCounter("controller.dedup.counter_wraps", without, "");

    StatSet stats;
    registry.fillStatSet(stats);
    EXPECT_TRUE(stats.has("duplicate_commits"));
    EXPECT_EQ(stats.get("duplicate_commits"), 5.0);
    EXPECT_FALSE(stats.has("counter_wraps"));
    EXPECT_EQ(stats.all().size(), 1u);
}

TEST(MetricRegistryTest, AliasLegacyAttachesToExistingPath)
{
    Counter counter;
    counter.increment(2);
    MetricRegistry registry;
    registry.addCounter("controller.writes_eliminated", counter, "");
    registry.aliasLegacy("controller.writes_eliminated",
                         "writes_eliminated");

    StatSet stats;
    registry.fillStatSet(stats);
    EXPECT_EQ(stats.get("writes_eliminated"), 2.0);
}

TEST(MetricRegistryTest, WriteJsonEmitsFlatObject)
{
    Counter counter;
    counter.increment(9);
    MetricRegistry registry;
    registry.addCounter("device.num_writes", counter, "");

    std::string out;
    JsonWriter w(&out, /*pretty=*/false);
    registry.writeJson(w);
    EXPECT_TRUE(w.ok());
    EXPECT_EQ(out, R"({"device.num_writes":9})");
}

TEST(MetricRegistryTest, FindMissingPathReturnsNull)
{
    MetricRegistry registry;
    EXPECT_EQ(registry.find("no.such.path"), nullptr);
    EXPECT_FALSE(registry.has("no.such.path"));
}

// --- wiring bugs panic -----------------------------------------------

TEST(MetricRegistryDeathTest, PathCollisionPanics)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Counter a, b;
    MetricRegistry registry;
    registry.addCounter("dup.path", a, "");
    EXPECT_DEATH(registry.addCounter("dup.path", b, ""), "dup.path");
}

TEST(MetricRegistryDeathTest, EmptyPathPanics)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Counter c;
    MetricRegistry registry;
    EXPECT_DEATH(registry.addCounter("", c, ""), "");
}

TEST(MetricRegistryDeathTest, AliasOfMissingPathPanics)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    MetricRegistry registry;
    EXPECT_DEATH(registry.aliasLegacy("absent.path", "legacy"),
                 "absent.path");
}

TEST(MetricRegistryDeathTest, SecondLegacyNamePanics)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Counter c;
    MetricRegistry registry;
    registry.addCounter("p", c, "", "first_legacy");
    EXPECT_DEATH(registry.aliasLegacy("p", "second_legacy"), "p");
}

} // namespace
} // namespace dewrite::obs
