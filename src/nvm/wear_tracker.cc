/**
 * @file
 * Wear tracker implementation.
 */

#include "nvm/wear_tracker.hh"

#include <algorithm>

namespace dewrite {

void
WearTracker::recordWrite(LineAddr addr, std::size_t bits_written)
{
    const std::uint64_t count = ++lineWrites_[addr];
    maxLineWrites_ = std::max(maxLineWrites_, count);
    ++totalWrites_;
    totalBits_ += bits_written;
}

std::uint64_t
WearTracker::lineWrites(LineAddr addr) const
{
    auto it = lineWrites_.find(addr);
    return it == lineWrites_.end() ? 0 : it->second;
}

double
WearTracker::relativeLifetime(std::uint64_t cell_endurance,
                              std::uint64_t leveled_lines) const
{
    if (totalWrites_ == 0)
        return 0.0;
    const double budget = static_cast<double>(cell_endurance) *
                          static_cast<double>(leveled_lines);
    return budget / static_cast<double>(totalWrites_);
}

} // namespace dewrite
