/**
 * @file
 * gem5-style status and error reporting: panic/fatal/warn/inform.
 *
 * panic() flags simulator bugs (aborts); fatal() flags unusable user
 * configuration (exits cleanly with an error code); warn()/inform()
 * print and continue. Reports are thread-safe: each message is
 * formatted privately and written to stderr in one call, so messages
 * from parallel runner workers never interleave mid-line.
 *
 * Verbosity comes from the DEWRITE_LOG environment variable:
 *  - "quiet":   only warn/fatal/panic reach stderr;
 *  - "normal":  the default — everything but verbose();
 *  - "verbose": verbose() messages print too.
 * Any other value is rejected with fatal(), matching the strict
 * parsing of DEWRITE_EVENTS / DEWRITE_THREADS.
 */

#ifndef DEWRITE_COMMON_LOGGING_HH
#define DEWRITE_COMMON_LOGGING_HH

#include <cstdarg>

namespace dewrite {

/** Internal invariant violated — a DeWrite bug. Prints and aborts. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Unusable configuration or input — a user error. Prints and exits(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Normal operating status; silenced by DEWRITE_LOG=quiet. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Diagnostic chatter; printed only under DEWRITE_LOG=verbose. */
void verbose(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report verbosity (see DEWRITE_LOG above). */
enum class LogLevel
{
    Quiet,
    Normal,
    Verbose,
};

/**
 * Parses a DEWRITE_LOG value. Returns false (leaving @p out untouched)
 * when @p text names no level; exposed for tests — the logging calls
 * themselves fatal() on a malformed value.
 */
bool parseLogLevel(const char *text, LogLevel &out);

/** The active level: DEWRITE_LOG if set and valid, else Normal. */
LogLevel logLevel();

} // namespace dewrite

#endif // DEWRITE_COMMON_LOGGING_HH
