file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_space_overhead.dir/bench_tab_space_overhead.cc.o"
  "CMakeFiles/bench_tab_space_overhead.dir/bench_tab_space_overhead.cc.o.d"
  "bench_tab_space_overhead"
  "bench_tab_space_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_space_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
