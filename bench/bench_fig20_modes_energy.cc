/**
 * @file
 * Figure 20 — energy of the direct way, DeWrite, and the parallel
 * way, normalized to the parallel way.
 *
 * The parallel way encrypts every write (wasting AES energy on each
 * duplicate); the direct way encrypts only confirmed uniques; DeWrite
 * wastes encryption only on mispredictions.
 *
 * Paper's shape: DeWrite ~= direct, ~32% below the parallel way on
 * average.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 20: energy by scheduling scheme "
                "(normalized to the parallel way)\n\n");

    SystemConfig config;
    TablePrinter table({ "app", "parallel (uJ)", "direct/parallel",
                         "DeWrite/parallel", "wasted AES (DeWrite)" });
    double direct_sum = 0.0, dewrite_sum = 0.0;
    for (const AppProfile &app : appCatalog()) {
        const ExperimentResult direct =
            runApp(app, config, dewriteScheme(DedupMode::Direct));
        const ExperimentResult parallel =
            runApp(app, config, dewriteScheme(DedupMode::Parallel));
        const ExperimentResult predicted =
            runApp(app, config, dewriteScheme(DedupMode::Predicted));

        const double dir_rel =
            static_cast<double>(direct.run.totalEnergy) /
            static_cast<double>(parallel.run.totalEnergy);
        const double dw_rel =
            static_cast<double>(predicted.run.totalEnergy) /
            static_cast<double>(parallel.run.totalEnergy);
        direct_sum += dir_rel;
        dewrite_sum += dw_rel;
        table.addRow(
            { app.name,
              TablePrinter::num(
                  static_cast<double>(parallel.run.totalEnergy) / 1e6,
                  1),
              TablePrinter::percent(dir_rel),
              TablePrinter::percent(dw_rel),
              TablePrinter::num(
                  predicted.stats.get("wasted_encryptions"), 0) });
    }
    const double n = static_cast<double>(appCatalog().size());
    table.addRow({ "AVERAGE", "-",
                   TablePrinter::percent(direct_sum / n),
                   TablePrinter::percent(dewrite_sum / n), "-" });
    table.print();

    std::printf("\npaper: DeWrite ~= direct way, ~32%% below the "
                "parallel way on average\n");
    return 0;
}
