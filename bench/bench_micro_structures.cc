/**
 * @file
 * Micro-benchmarks of the flat hot-path containers vs the node-based
 * std:: equivalents they replaced.
 *
 * Three workloads mirror the simulator's access patterns:
 *
 *  - line store: write-then-read of 256 B lines keyed by LineAddr
 *    (NvmDevice::store_, TraceGen's image) — DenseLineStore vs
 *    std::unordered_map<LineAddr, Line>.
 *  - metadata map: mixed insert/find/erase of 8 B values under
 *    Zipf-ish reuse (engine counters, hash store) — FlatMap vs
 *    std::unordered_map<uint64_t, uint64_t>.
 *  - per-line counters: increment-heavy direct indexing
 *    (WearTracker, SecureBaseline counters) — PagedArray vs
 *    std::unordered_map<uint64_t, uint64_t>.
 *
 * Each workload runs in epochs that construct a fresh store, drive the
 * op mix, and destroy it — the lifecycle the experiment runner imposes
 * (every matrix cell builds its own System), so per-node allocation
 * and teardown are measured, not amortized away.
 *
 * Self-timed (steady_clock) rather than google-benchmark so the tool
 * can run as a CI smoke check: `--smoke` shrinks the working set and
 * iteration count to finish in well under a second while still
 * touching every code path and verifying the two implementations
 * agree on the final state.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>

#include "common/dense_line_store.hh"
#include "common/flat_map.hh"
#include "common/line.hh"
#include "common/paged_array.hh"
#include "common/rng.hh"
#include "common/table_printer.hh"

using namespace dewrite;

namespace {

struct BenchParams
{
    std::uint64_t epochs = 8;
    std::uint64_t lineOps = 250'000;
    std::uint64_t lineAddrs = 1 << 16;
    std::uint64_t mapOps = 500'000;
    std::uint64_t mapKeys = 1 << 16;
    std::uint64_t counterOps = 1'000'000;
    std::uint64_t counterAddrs = 1 << 16;
};

double
opsPerSec(std::uint64_t ops, double seconds)
{
    return seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
}

template <typename Fn>
double
timeIt(Fn &&fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

std::string
formatOps(double ops)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fM", ops / 1e6);
    return buf;
}

std::string
formatRatio(double ratio)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", ratio);
    return buf;
}

/** Write-then-read line traffic; returns a content checksum. */
template <typename MakeStore, typename Write, typename Read>
std::uint64_t
runLineStore(const BenchParams &p, MakeStore &&makeStore, Write &&write,
             Read &&read)
{
    std::uint64_t check = 0;
    for (std::uint64_t epoch = 0; epoch < p.epochs; ++epoch) {
        auto store = makeStore();
        Rng rng(42 + epoch);
        Line content;
        for (std::uint64_t i = 0; i < p.lineOps; ++i) {
            const LineAddr addr = rng.nextBelow(p.lineAddrs);
            if (rng.chance(0.6)) {
                content.setWord64(0, i);
                content.setWord64(1, addr);
                write(store, addr, content);
            } else {
                check += read(store, addr);
            }
        }
    }
    return check;
}

/** Mixed insert/find/erase over a bounded key space; returns a sum. */
template <typename MakeMap, typename Bump, typename Find, typename Erase>
std::uint64_t
runMetadataMap(const BenchParams &p, MakeMap &&makeMap, Bump &&bump,
               Find &&find, Erase &&erase)
{
    std::uint64_t check = 0;
    for (std::uint64_t epoch = 0; epoch < p.epochs; ++epoch) {
        auto map = makeMap();
        Rng rng(43 + epoch);
        for (std::uint64_t i = 0; i < p.mapOps; ++i) {
            const std::uint64_t key = rng.nextBelow(p.mapKeys);
            const std::uint64_t op = rng.nextBelow(10);
            if (op < 6)
                bump(map, key);
            else if (op < 9)
                check += find(map, key);
            else
                erase(map, key);
        }
        check += map.size();
    }
    return check;
}

/** Increment-heavy per-line counters; returns the final total. */
template <typename MakeCounters, typename Inc, typename Get>
std::uint64_t
runCounters(const BenchParams &p, MakeCounters &&makeCounters, Inc &&inc,
            Get &&get)
{
    std::uint64_t total = 0;
    for (std::uint64_t epoch = 0; epoch < p.epochs; ++epoch) {
        auto counters = makeCounters();
        Rng rng(44 + epoch);
        for (std::uint64_t i = 0; i < p.counterOps; ++i)
            inc(counters, rng.nextBelow(p.counterAddrs));
        for (std::uint64_t addr = 0; addr < p.counterAddrs; ++addr)
            total += get(counters, addr);
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    BenchParams p;
    if (smoke) {
        p.lineOps = 50'000;
        p.lineAddrs = 1 << 10;
        p.mapOps = 100'000;
        p.mapKeys = 1 << 10;
        p.counterOps = 200'000;
        p.counterAddrs = 1 << 10;
    }

    std::printf("Flat hot-path containers vs node-based std:: maps%s\n\n",
                smoke ? " (smoke)" : "");

    // --- 256 B line store ------------------------------------------------
    std::uint64_t stdLineCheck = 0, denseLineCheck = 0;
    const double stdLineSecs = timeIt([&] {
        stdLineCheck = runLineStore(
            p, [] { return std::unordered_map<LineAddr, Line>(); },
            [](auto &s, LineAddr a, const Line &l) { s[a] = l; },
            [](const auto &s, LineAddr a) {
                const auto it = s.find(a);
                return it == s.end() ? 0 : it->second.word64(0);
            });
    });
    const double denseLineSecs = timeIt([&] {
        denseLineCheck = runLineStore(
            p, [&] { return DenseLineStore(p.lineAddrs); },
            [](auto &s, LineAddr a, const Line &l) {
                s.refForWrite(a) = l;
            },
            [](const auto &s, LineAddr a) {
                const Line *line = s.find(a);
                return line ? line->word64(0) : 0;
            });
    });

    // --- metadata map ----------------------------------------------------
    std::uint64_t stdMapCheck = 0, flatMapCheck = 0;
    const double stdMapSecs = timeIt([&] {
        stdMapCheck = runMetadataMap(
            p, [] { return std::unordered_map<std::uint64_t,
                                              std::uint64_t>(); },
            [](auto &m, std::uint64_t k) { ++m[k]; },
            [](const auto &m, std::uint64_t k) {
                const auto it = m.find(k);
                return it == m.end() ? 0 : it->second;
            },
            [](auto &m, std::uint64_t k) { m.erase(k); });
    });
    const double flatMapSecs = timeIt([&] {
        flatMapCheck = runMetadataMap(
            p, [] { return FlatMap<std::uint64_t, std::uint64_t>(); },
            [](auto &m, std::uint64_t k) { ++m[k]; },
            [](const auto &m, std::uint64_t k) {
                const std::uint64_t *v = m.find(k);
                return v ? *v : 0;
            },
            [](auto &m, std::uint64_t k) { m.erase(k); });
    });

    // --- per-line counters -----------------------------------------------
    std::uint64_t stdCounterCheck = 0, pagedCounterCheck = 0;
    const double stdCounterSecs = timeIt([&] {
        stdCounterCheck = runCounters(
            p, [] { return std::unordered_map<std::uint64_t,
                                              std::uint64_t>(); },
            [](auto &c, std::uint64_t a) { ++c[a]; },
            [](const auto &c, std::uint64_t a) {
                const auto it = c.find(a);
                return it == c.end() ? 0 : it->second;
            });
    });
    const double pagedCounterSecs = timeIt([&] {
        pagedCounterCheck = runCounters(
            p, [&] { return PagedArray<std::uint64_t>(p.counterAddrs); },
            [](auto &c, std::uint64_t a) { ++c.ref(a); },
            [](const auto &c, std::uint64_t a) { return c.get(a); });
    });

    // Identical op sequences must leave identical observable state; a
    // mismatch means one implementation is wrong, not slow.
    bool ok = true;
    if (stdLineCheck != denseLineCheck) {
        std::fprintf(stderr, "FAIL: line-store checksums differ\n");
        ok = false;
    }
    if (stdMapCheck != flatMapCheck) {
        std::fprintf(stderr, "FAIL: metadata-map state differs\n");
        ok = false;
    }
    if (stdCounterCheck != pagedCounterCheck) {
        std::fprintf(stderr, "FAIL: counter totals differ\n");
        ok = false;
    }

    const std::uint64_t lineTotal = p.epochs * p.lineOps;
    const std::uint64_t mapTotal = p.epochs * p.mapOps;
    const std::uint64_t counterTotal = p.epochs * p.counterOps;
    TablePrinter table({ "workload", "std (ops/s)", "flat (ops/s)",
                         "speedup" });
    table.addRow({ "line store (DenseLineStore)",
                   formatOps(opsPerSec(lineTotal, stdLineSecs)),
                   formatOps(opsPerSec(lineTotal, denseLineSecs)),
                   formatRatio(stdLineSecs / denseLineSecs) });
    table.addRow({ "metadata map (FlatMap)",
                   formatOps(opsPerSec(mapTotal, stdMapSecs)),
                   formatOps(opsPerSec(mapTotal, flatMapSecs)),
                   formatRatio(stdMapSecs / flatMapSecs) });
    table.addRow({ "counters (PagedArray)",
                   formatOps(opsPerSec(counterTotal, stdCounterSecs)),
                   formatOps(opsPerSec(counterTotal, pagedCounterSecs)),
                   formatRatio(stdCounterSecs / pagedCounterSecs) });
    table.print();

    if (!ok)
        return 1;
    std::printf("\n%s\n", smoke ? "smoke OK" : "done");
    return 0;
}
