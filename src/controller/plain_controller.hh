/**
 * @file
 * Unencrypted, non-deduplicated NVM controller.
 *
 * The reference point with no controller machinery at all: writes store
 * plaintext, reads return it. Used by tests as ground truth and by
 * benches to isolate the cost of encryption itself.
 */

#ifndef DEWRITE_CONTROLLER_PLAIN_CONTROLLER_HH
#define DEWRITE_CONTROLLER_PLAIN_CONTROLLER_HH

#include "controller/mem_controller.hh"
#include "nvm/nvm_device.hh"

namespace dewrite {

class PlainController : public MemController
{
  public:
    explicit PlainController(NvmDevice &device) : device_(device) {}

    CtrlWriteResult write(LineAddr addr, const Line &data,
                          Time now) override;
    CtrlReadResult read(LineAddr addr, Time now) override;
    CtrlReadResult readTiming(LineAddr addr, Time now) override;

    std::string name() const override { return "plain-nvm"; }
    Energy controllerEnergy() const override { return 0; }

  private:
    NvmDevice &device_;
};

} // namespace dewrite

#endif // DEWRITE_CONTROLLER_PLAIN_CONTROLLER_HH
