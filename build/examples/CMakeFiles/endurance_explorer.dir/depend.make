# Empty dependencies file for endurance_explorer.
# This may be replaced when dependencies are built.
