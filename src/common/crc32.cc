/**
 * @file
 * Table-driven CRC-32 implementation.
 */

#include "common/crc32.hh"

#include <array>

namespace dewrite {

namespace {

/** Reflected IEEE 802.3 polynomial. */
constexpr std::uint32_t kPolynomial = 0xedb88320u;

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
        table[i] = crc;
    }
    return table;
}

const std::array<std::uint32_t, 256> kTable = makeTable();

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ kTable[(crc ^ data[i]) & 0xff];
    return crc ^ 0xffffffffu;
}

std::uint32_t
crc32(const Line &line)
{
    return crc32(line.data(), kLineSize);
}

} // namespace dewrite
