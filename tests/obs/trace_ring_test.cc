/**
 * @file
 * WriteTracer tests: ring wraparound, epoch aggregation, degenerate
 * capacities, and the exporters. The suite is built both with the
 * tracer compiled in (default) and compiled out (DEWRITE_TRACE=0);
 * assertions on recorded state apply only to the former, and the
 * compiled-out build asserts the mechanism truly vanishes.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/json_writer.hh"
#include "obs/trace_export.hh"
#include "obs/trace_ring.hh"

namespace dewrite::obs {
namespace {

WriteEvent
makeEvent(LineAddr addr, bool duplicate, std::int8_t predicted = -1)
{
    WriteEvent ev;
    ev.issue = addr * 100;
    ev.done = addr * 100 + 50;
    ev.addr = addr;
    ev.duplicate = duplicate;
    ev.predictedDup = predicted;
    return ev;
}

TEST(WriteTracerTest, CompiledOutBuildRecordsNothing)
{
    if (WriteTracer::compiledIn())
        GTEST_SKIP() << "tracer compiled in";
    TraceConfig config;
    config.capacity = 16;
    WriteTracer tracer(config);
    tracer.record(makeEvent(1, true));
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.capacity(), 0u); // Ring never allocated.
}

TEST(WriteTracerTest, RetainsEventsOldestFirst)
{
    if (!WriteTracer::compiledIn())
        GTEST_SKIP() << "tracer compiled out";
    TraceConfig config;
    config.capacity = 8;
    WriteTracer tracer(config);
    for (LineAddr a = 0; a < 5; ++a)
        tracer.record(makeEvent(a, false));

    EXPECT_EQ(tracer.recorded(), 5u);
    EXPECT_EQ(tracer.size(), 5u);
    EXPECT_EQ(tracer.dropped(), 0u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(tracer.event(i).addr, i);
        EXPECT_EQ(tracer.event(i).seq, i); // Stamped in record order.
    }
}

TEST(WriteTracerTest, RingWrapsKeepingNewestEvents)
{
    if (!WriteTracer::compiledIn())
        GTEST_SKIP() << "tracer compiled out";
    TraceConfig config;
    config.capacity = 4;
    WriteTracer tracer(config);
    for (LineAddr a = 0; a < 10; ++a)
        tracer.record(makeEvent(a, false));

    EXPECT_EQ(tracer.recorded(), 10u);
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    // Oldest retained is event 6; newest is event 9.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(tracer.event(i).addr, 6 + i);
}

TEST(WriteTracerTest, CapacityZeroCountsButRetainsNothing)
{
    if (!WriteTracer::compiledIn())
        GTEST_SKIP() << "tracer compiled out";
    TraceConfig config;
    config.capacity = 0;
    config.epochEvents = 2;
    WriteTracer tracer(config);
    for (LineAddr a = 0; a < 6; ++a)
        tracer.record(makeEvent(a, a % 2 == 0));

    EXPECT_EQ(tracer.recorded(), 6u);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.dropped(), 6u);
    // Epoch aggregation still works without a ring.
    ASSERT_EQ(tracer.epochs().size(), 3u);
    EXPECT_EQ(tracer.epochs()[0].duplicates, 1u);
}

TEST(WriteTracerTest, EpochsAggregateAndRoll)
{
    if (!WriteTracer::compiledIn())
        GTEST_SKIP() << "tracer compiled out";
    TraceConfig config;
    config.capacity = 64;
    config.epochEvents = 4;
    WriteTracer tracer(config);

    // Epoch 0: two duplicates, both predicted correctly.
    tracer.record(makeEvent(0, true, 1));
    tracer.record(makeEvent(1, true, 1));
    tracer.record(makeEvent(2, false, 1)); // Mispredicted.
    tracer.record(makeEvent(3, false, -1)); // No prediction.

    ASSERT_EQ(tracer.epochs().size(), 1u);
    const EpochSnapshot &epoch = tracer.epochs()[0];
    EXPECT_EQ(epoch.epoch, 0u);
    EXPECT_EQ(epoch.events, 4u);
    EXPECT_EQ(epoch.duplicates, 2u);
    EXPECT_EQ(epoch.predictions, 3u);
    EXPECT_EQ(epoch.correctPredictions, 2u);
    EXPECT_DOUBLE_EQ(epoch.writeReduction(), 0.5);
    EXPECT_DOUBLE_EQ(epoch.predictionAccuracy(), 2.0 / 3.0);

    // The next event starts epoch 1.
    tracer.record(makeEvent(4, false));
    EXPECT_EQ(tracer.currentEpoch().epoch, 1u);
    EXPECT_EQ(tracer.currentEpoch().events, 1u);
}

TEST(WriteTracerTest, EmptyEpochRatiosAreZero)
{
    const EpochSnapshot empty;
    EXPECT_EQ(empty.writeReduction(), 0.0);
    EXPECT_EQ(empty.predictionAccuracy(), 0.0);
}

TEST(WriteTracerDeathTest, OutOfRangeEventIndexPanics)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    WriteTracer tracer;
    EXPECT_DEATH(tracer.event(0), "out of range");
}

// --- exporters -------------------------------------------------------

TEST(TraceExportTest, ChromeTraceHasRequiredShape)
{
    TraceConfig config;
    config.capacity = 16;
    WriteTracer tracer(config);
    tracer.record(makeEvent(1, true, 1));
    tracer.record(makeEvent(2, false, 0));

    std::string out;
    JsonWriter w(&out, /*pretty=*/false);
    writeChromeTrace(tracer, w, "app/scheme");
    EXPECT_TRUE(w.ok());
    EXPECT_EQ(w.depth(), 0u);

    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(out.find("app/scheme"), std::string::npos);
    if (WriteTracer::compiledIn()) {
        EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
        EXPECT_NE(out.find("\"duplicate\":true"), std::string::npos);
    }
}

TEST(TraceExportTest, EpochSeriesListsCompletedAndTailEpochs)
{
    TraceConfig config;
    config.capacity = 16;
    config.epochEvents = 2;
    WriteTracer tracer(config);
    tracer.record(makeEvent(0, true));
    tracer.record(makeEvent(1, false));
    tracer.record(makeEvent(2, true)); // Tail epoch, in progress.

    std::string out;
    JsonWriter w(&out, /*pretty=*/false);
    writeEpochSeries(tracer, w);
    EXPECT_TRUE(w.ok());
    EXPECT_EQ(w.depth(), 0u);
    EXPECT_EQ(out.front(), '[');
    if (WriteTracer::compiledIn()) {
        EXPECT_NE(out.find("\"write_reduction\":0.5"),
                  std::string::npos);
        // Both the completed epoch and the tail appear.
        EXPECT_NE(out.find("\"epoch\":0"), std::string::npos);
        EXPECT_NE(out.find("\"epoch\":1"), std::string::npos);
    }
}

} // namespace
} // namespace dewrite::obs
