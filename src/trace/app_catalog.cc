/**
 * @file
 * Application catalog data.
 *
 * Column legend (AppProfile fields in order): name, suite, duplicate
 * target, zero-given-dup, state persistence, glitch rate, write
 * fraction, rewrite fraction, max mutated words, working-set lines,
 * mean instruction gap, popularity theta.
 */

#include "trace/app_catalog.hh"

#include "common/logging.hh"

namespace dewrite {

const std::vector<AppProfile> &
appCatalog()
{
    static const std::vector<AppProfile> catalog = {
        // SPEC CPU2006 (12 applications).
        { "bzip2",        "SPEC",   0.21, 0.15, 0.970, 0.04, 0.45, 0.90, 8,
          32768, 60.0, 0.6 },
        { "gcc",          "SPEC",   0.45, 0.20, 0.980, 0.04, 0.50, 0.85, 6,
          24576, 75.0, 0.7 },
        { "mcf",          "SPEC",   0.50, 0.15, 0.980, 0.05, 0.55, 0.85, 4,
          49152, 30.0,  0.6 },
        { "milc",         "SPEC",   0.55, 0.25, 0.985, 0.04, 0.50, 0.80, 6,
          65536, 40.0,  0.6 },
        { "zeusmp",       "SPEC",   0.62, 0.30, 0.980, 0.04, 0.50, 0.85, 6,
          32768, 50.0, 0.7 },
        { "cactusADM",    "SPEC",   0.984, 0.10, 0.995, 0.005, 0.60, 0.85, 4,
          32768, 45.0,  0.8 },
        { "leslie3d",     "SPEC",   0.52, 0.20, 0.980, 0.04, 0.50, 0.85, 6,
          32768, 55.0, 0.6 },
        { "gobmk",        "SPEC",   0.40, 0.20, 0.975, 0.05, 0.45, 0.90, 8,
          16384, 100.0, 0.7 },
        { "sjeng",        "SPEC",   0.65, 0.85, 0.980, 0.03, 0.45, 0.90, 8,
          16384, 90.0, 0.7 },
        { "libquantum",   "SPEC",   0.90, 0.30, 0.990, 0.01, 0.60, 0.80, 4,
          49152, 35.0,  0.8 },
        { "lbm",          "SPEC",   0.93, 0.15, 0.990, 0.01, 0.65, 0.80, 4,
          65536, 25.0,  0.8 },
        { "soplex",       "SPEC",   0.48, 0.20, 0.980, 0.04, 0.50, 0.85, 6,
          24576, 65.0, 0.6 },
        // PARSEC 2.1 (8 applications).
        { "blackscholes", "PARSEC", 0.88, 0.30, 0.990, 0.01, 0.55, 0.80, 4,
          24576, 50.0, 0.8 },
        { "bodytrack",    "PARSEC", 0.42, 0.25, 0.975, 0.05, 0.50, 0.85, 6,
          24576, 70.0, 0.7 },
        { "canneal",      "PARSEC", 0.35, 0.15, 0.975, 0.04, 0.50, 0.85, 6,
          65536, 45.0,  0.5 },
        { "ferret",       "PARSEC", 0.50, 0.20, 0.980, 0.04, 0.50, 0.85, 6,
          32768, 60.0, 0.7 },
        { "fluidanimate", "PARSEC", 0.70, 0.25, 0.985, 0.03, 0.55, 0.80, 4,
          32768, 40.0,  0.7 },
        { "streamcluster","PARSEC", 0.75, 0.30, 0.985, 0.02, 0.60, 0.80, 4,
          49152, 35.0,  0.7 },
        { "vips",         "PARSEC", 0.186, 0.20, 0.970, 0.03, 0.50, 0.85, 8,
          32768, 55.0, 0.6 },
        { "x264",         "PARSEC", 0.38, 0.20, 0.975, 0.04, 0.55, 0.85, 6,
          32768, 50.0, 0.7 },
    };
    return catalog;
}

const AppProfile &
appByName(const std::string &name)
{
    for (const AppProfile &profile : appCatalog()) {
        if (profile.name == name)
            return profile;
    }
    fatal("unknown application '%s'", name.c_str());
}

} // namespace dewrite
