/**
 * @file
 * NVM address decoding.
 *
 * The device interleaves consecutive line addresses across banks so
 * that streaming accesses spread load, matching the default NVMain
 * address translator. Only the bank matters for timing in this model;
 * rows are tracked for wear statistics and debugging.
 */

#ifndef DEWRITE_NVM_NVM_ADDRESS_HH
#define DEWRITE_NVM_NVM_ADDRESS_HH

#include "common/fast_div.hh"
#include "common/types.hh"

namespace dewrite {

/** The physical coordinates a line address decodes to. */
struct DecodedAddr
{
    unsigned bank;
    std::uint64_t row;
};

/** How consecutive line addresses map onto banks. */
enum class InterleavePolicy
{
    /**
     * Consecutive lines rotate across banks (NVMain's default):
     * streaming accesses spread load, at the cost of row-buffer
     * locality for sequential runs.
     */
    Line,

    /**
     * A whole row buffer's worth of consecutive lines stays in one
     * bank before rotating: sequential runs hit the open row, but a
     * burst to one region serializes on one bank.
     */
    Row,
};

/** Bank/row mapping under a configurable interleave policy. */
class AddressDecoder
{
  public:
    AddressDecoder(unsigned num_banks, unsigned lines_per_row,
                   InterleavePolicy policy);

    /** Line-interleaved convenience constructor. */
    explicit AddressDecoder(unsigned num_banks);

    DecodedAddr decode(LineAddr addr) const;

    unsigned numBanks() const { return numBanks_; }
    InterleavePolicy policy() const { return policy_; }

  private:
    unsigned numBanks_;
    unsigned linesPerRow_;
    InterleavePolicy policy_;
    FastDiv bankDiv_; //!< decode() runs on every device access.
    FastDiv rowDiv_;
};

} // namespace dewrite

#endif // DEWRITE_NVM_NVM_ADDRESS_HH
