/**
 * @file
 * Full-line and Data-Comparison-Write reducers.
 *
 * DCW [Yang et al.] reads the old cell contents before a write and
 * programs only the cells whose value changes. On encrypted NVMM the
 * diffusion property makes ~50% of bits differ on every rewrite, which
 * is exactly the effect Figure 13 quantifies.
 */

#ifndef DEWRITE_CONTROLLER_BITLEVEL_DCW_HH
#define DEWRITE_CONTROLLER_BITLEVEL_DCW_HH

#include "common/dense_line_store.hh"
#include "controller/bitlevel/bitflip.hh"
#include "crypto/counter_mode.hh"

namespace dewrite {

/** Shared cell-image tracking for the ciphertext-image reducers. */
class CipherImageReducer : public BitLevelReducer
{
  public:
    void reserveSlots(std::uint64_t expected) override
    {
        images_.reserve(expected);
    }

  protected:
    explicit CipherImageReducer(const CounterModeEngine &cme) : cme_(cme) {}

    /** Cell image of @p slot (zeros if never written — fresh PCM). */
    const Line &image(LineAddr slot) const;

    void
    setImage(LineAddr slot, const Line &image)
    {
        images_.refForWrite(slot) = image;
    }

    const CounterModeEngine &cme_;

  private:
    DenseLineStore images_;
};

/** Baseline: every cell of the line is programmed on every write. */
class NoneReducer : public CipherImageReducer
{
  public:
    explicit NoneReducer(const CounterModeEngine &cme)
        : CipherImageReducer(cme)
    {}

    std::size_t onWrite(LineAddr slot, const Line &new_pt,
                        std::uint64_t counter) override;

    BitTechnique technique() const override { return BitTechnique::None; }
};

/** DCW: program only the differing cells. */
class DcwReducer : public CipherImageReducer
{
  public:
    explicit DcwReducer(const CounterModeEngine &cme)
        : CipherImageReducer(cme)
    {}

    std::size_t onWrite(LineAddr slot, const Line &new_pt,
                        std::uint64_t counter) override;

    BitTechnique technique() const override { return BitTechnique::Dcw; }
};

} // namespace dewrite

#endif // DEWRITE_CONTROLLER_BITLEVEL_DCW_HH
