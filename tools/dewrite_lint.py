#!/usr/bin/env python3
"""dewrite-lint: repo-specific invariant lint for the DeWrite simulator.

Token-level rules that clang-tidy cannot express because they encode
*project* policy, not C++ policy (DESIGN.md §5e).  The file set is
driven off the build tree's ``compile_commands.json`` (headers are
added by glob since they are not TUs).

Rules
  no-std-hash-container   std::unordered_{map,set,...} is banned in
                          src/: iteration order and allocation are
                          nondeterministic across libstdc++ versions.
                          Use FlatMap / PagedArray / DenseAddrSet.
                          tests/ and bench/ are allowlisted cold paths
                          (reference oracles and comparison baselines).
  no-nondeterminism       rand()/srand()/time()/std::random_device/
                          system_clock/pointer-keyed std::hash are
                          banned in src/ and bench/: every simulated
                          result must be a function of the seed.
                          (steady_clock is fine: host-side profiling
                          only.)
  unsorted-iteration      .forEach( on FlatMap/PagedArray visits
                          bucket order.  Any use needs forEachSorted
                          or an allow() annotation arguing the order
                          never reaches user-visible output.
  hot-path-alloc          inside a function marked ``// dewrite-lint:
                          hot``, allocation-shaped calls (new,
                          make_unique, push_back, resize, ...) are
                          banned.
  no-raw-assert           assert( is banned in src/: it vanishes under
                          NDEBUG and aborts without context.  Use
                          DEWRITE_CHECK (always on, prints the
                          expression and location) or DEWRITE_DCHECK
                          (debug-only) from common/check.hh.
                          static_assert is unaffected.
  env-getenv-funnel       std::getenv may appear only in
                          src/common/env.cc so every environment
                          variable goes through one audited funnel.
  env-fail-fast           new DEWRITE_* variables must be parsed with
                          envFlag()/envUint() (which reject malformed
                          values fatally); raw envRaw() access is
                          reserved for src/common/{env,logging}.
  env-knob-registry       every DEWRITE_* name passed to an env access
                          call (envFlag/envUint/envRaw/getenv/setenv/
                          unsetenv) must appear in KNOWN_KNOBS below.
                          The catalogue is the single authoritative
                          list of environment knobs; adding a variable
                          without registering it here (and documenting
                          it in README.md) is the defect this rule
                          catches — typos like DEWRITE_SHARD silently
                          reading the default instead of failing.

Suppression
  // dewrite-lint: allow(rule-name)       this line and the next
  // dewrite-lint: allow-file(rule-name)  whole file
  // dewrite-lint: hot                    marks the next function hot

Exit codes: 0 clean, 1 violations, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ANNOTATION_RE = re.compile(
    r"//\s*dewrite-lint:\s*(?P<kind>allow-file|allow|hot)"
    r"(?:\s*\(\s*(?P<rules>[a-z0-9, -]*?)\s*\))?")


class Rule:
    def __init__(self, name: str, pattern: str, dirs: tuple[str, ...],
                 message: str, exempt: tuple[str, ...] = (),
                 hot_only: bool = False,
                 needs_annotation: bool = False):
        self.name = name
        self.pattern = re.compile(pattern)
        self.dirs = dirs          # top-level repo dirs in scope
        self.exempt = exempt      # repo-relative files out of scope
        self.hot_only = hot_only  # only applies inside hot regions
        self.needs_annotation = needs_annotation
        self.message = message


RULES = [
    Rule("no-std-hash-container",
         r"std::unordered_(?:multi)?(?:map|set)\b",
         dirs=("src",),
         message="std::unordered_* is nondeterministic and allocates "
                 "per node; use FlatMap / PagedArray / DenseAddrSet "
                 "(tests/ and bench/ oracles are allowlisted)"),
    Rule("no-nondeterminism",
         r"(?:\b(?:s?rand|time)\s*\(|std::random_device\b"
         r"|\bsystem_clock\b|std::hash<[^<>]*\*\s*>)",
         dirs=("src", "bench"),
         message="nondeterminism source; results must be a pure "
                 "function of the seed (use Rng; steady_clock for "
                 "host profiling)"),
    Rule("unsorted-iteration",
         r"\.forEach\(",
         dirs=("src", "bench"),
         needs_annotation=True,
         message=".forEach( visits bucket order; use forEachSorted "
                 "for anything user-visible, or annotate "
                 "'// dewrite-lint: allow(unsorted-iteration)' with "
                 "the reason order cannot escape"),
    Rule("hot-path-alloc",
         r"(?:\bnew\b|\bmake_unique\b|\bmake_shared\b"
         r"|\.push_back\s*\(|\.emplace_back\s*\(|\.resize\s*\("
         r"|\.reserve\s*\(|std::vector\s*<|std::string\b)",
         dirs=("src",),
         hot_only=True,
         message="allocation-shaped construct inside a "
                 "'// dewrite-lint: hot' function"),
    Rule("no-raw-assert",
         r"(?<![\w.])assert\s*\(",
         dirs=("src",),
         message="raw assert( vanishes under NDEBUG and aborts "
                 "without context; use DEWRITE_CHECK / DEWRITE_DCHECK "
                 "(src/common/check.hh). static_assert is fine"),
    Rule("env-getenv-funnel",
         r"\bgetenv\s*\(",
         dirs=("src", "tests", "bench", "examples"),
         exempt=("src/common/env.cc",),
         message="std::getenv is funneled through src/common/env.cc; "
                 "use envFlag()/envUint()/envRaw()"),
    Rule("env-fail-fast",
         r"\benvRaw\s*\(",
         dirs=("src", "bench", "examples"),
         exempt=("src/common/env.cc", "src/common/env.hh",
                 "src/common/logging.cc"),
         message="parse DEWRITE_* variables with envFlag()/envUint() "
                 "so malformed values fail fast; raw access is "
                 "reserved for the env/logging layer"),
]

# The authoritative environment-knob catalogue (env-knob-registry).
# Every knob is parsed in src/common/ or documented in README.md; add
# new names here in the same change that introduces them.
KNOWN_KNOBS = frozenset({
    "DEWRITE_AUDIT",         # run-end + epoch metadata audits
    "DEWRITE_AUDIT_EPOCH",   # audit cadence in events
    "DEWRITE_BATCH",         # write-batch capacity (1..kMaxWriteBatch)
    "DEWRITE_DETECT",        # detection policy (confirm-read/weak-only/
                             # weak-strong/adaptive)
    "DEWRITE_DETECT_EPOCH",  # adaptive-detection epoch in commits
    "DEWRITE_EVENTS",        # events per experiment cell
    "DEWRITE_LOG",           # log level
    "DEWRITE_SHARDS",        # service shard count (1..64)
    "DEWRITE_STAGE_PROFILE", # per-stage host-cycle attribution
    "DEWRITE_TELEMETRY",     # service telemetry JSONL sink path
    "DEWRITE_TELEMETRY_EVERY",  # telemetry emit cadence (rounds)
    "DEWRITE_THREADS",       # runner / service worker threads
})

# src/common/env.cc mirrors the catalogue as knownKnobs() so bench
# provenance can stamp every knob's live value; the two lists must
# stay in lockstep (checked whenever env.cc is linted).
KNOB_MIRROR_FILE = "src/common/env.cc"
KNOB_LITERAL_RE = re.compile(r'"(DEWRITE_[A-Z0-9_]*)"')

# Calls whose first argument names an environment variable. The knob
# literal is inspected on the raw line (strip_code erases string
# contents), but only when the call itself survives comment stripping.
ENV_CALL_RE = re.compile(
    r"\b(?P<call>envFlag|envUint|envChoice|envRaw|getenv|setenv|unsetenv"
    r")\s*\(\s*"
    r"\"(?P<knob>DEWRITE_[A-Z0-9_]*)\"")
ENV_KNOB_RULE = "env-knob-registry"
ENV_KNOB_DIRS = ("src", "tests", "bench", "examples")
# The env unit test exercises the parser with a fixture variable that
# is deliberately not a real knob.
ENV_KNOB_EXEMPT = ("tests/common/env_test.cc",)

RULE_NAMES = {rule.name for rule in RULES} | {ENV_KNOB_RULE}


def strip_code(lines: list[str]) -> list[str]:
    """Return per-line 'code view': comments and string/char literal
    contents removed (annotation parsing uses the raw lines)."""
    out = []
    in_block = False
    for line in lines:
        code = []
        i, n = 0, len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                code.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        code.append(quote)
                        i += 1
                        break
                    i += 1
                continue
            code.append(ch)
            i += 1
        out.append("".join(code))
    return out


def parse_annotations(lines: list[str]):
    """-> (allow: {line_no: set}, allow_file: set, hot_lines: [line_no])

    line_no is 1-based.  Unknown rule names in annotations are
    themselves an error, reported by the caller via the returned
    ``bad`` list of (line_no, name).
    """
    allow: dict[int, set[str]] = {}
    allow_file: set[str] = set()
    hot_starts: list[int] = []
    bad: list[tuple[int, str]] = []
    for lineno, line in enumerate(lines, 1):
        match = ANNOTATION_RE.search(line)
        if not match:
            continue
        kind = match.group("kind")
        names = [name.strip()
                 for name in (match.group("rules") or "").split(",")
                 if name.strip()]
        for name in names:
            if name not in RULE_NAMES:
                bad.append((lineno, name))
        if kind == "hot":
            hot_starts.append(lineno)
        elif kind == "allow-file":
            allow_file.update(names)
        else:
            allow.setdefault(lineno, set()).update(names)
            allow.setdefault(lineno + 1, set()).update(names)
    return allow, allow_file, hot_starts, bad


def hot_regions(code_lines: list[str],
                hot_starts: list[int]) -> set[int]:
    """1-based line numbers inside '// dewrite-lint: hot' functions.

    A hot region runs from the first '{' at or after the annotation to
    its matching '}' (brace counting on the comment-stripped view)."""
    hot: set[int] = set()
    for start in hot_starts:
        depth = 0
        opened = False
        for lineno in range(start, len(code_lines) + 1):
            for ch in code_lines[lineno - 1]:
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
            if opened:
                hot.add(lineno)
                if depth <= 0:
                    break
        # An annotation with no following brace (e.g. on a
        # declaration) silently marks nothing; that is caught by the
        # self-test, not worth a runtime diagnostic.
    return hot


def lint_text(rel: str, text: str) -> list[tuple[str, int, str, str]]:
    """Lint one file's contents -> (file, line, rule, message) rows."""
    lines = text.splitlines()
    code = strip_code(lines)
    allow, allow_file, hot_starts, bad = parse_annotations(lines)
    violations = [(rel, lineno, "unknown-rule",
                   f"annotation names unknown rule '{name}'")
                  for lineno, name in bad]
    hot = hot_regions(code, hot_starts)
    top = rel.split("/", 1)[0]
    for rule in RULES:
        if top not in rule.dirs or rel in rule.exempt:
            continue
        if rule.name in allow_file:
            continue
        for lineno, code_line in enumerate(code, 1):
            if rule.hot_only and lineno not in hot:
                continue
            if not rule.pattern.search(code_line):
                continue
            if rule.name in allow.get(lineno, ()):
                continue
            violations.append((rel, lineno, rule.name, rule.message))

    if top in ENV_KNOB_DIRS and rel not in ENV_KNOB_EXEMPT \
            and ENV_KNOB_RULE not in allow_file:
        for lineno, line in enumerate(lines, 1):
            for match in ENV_CALL_RE.finditer(line):
                # Skip calls that only exist inside comments.
                if match.group("call") not in code[lineno - 1]:
                    continue
                if match.group("knob") in KNOWN_KNOBS:
                    continue
                if ENV_KNOB_RULE in allow.get(lineno, ()):
                    continue
                violations.append(
                    (rel, lineno, ENV_KNOB_RULE,
                     f"'{match.group('knob')}' is not in the "
                     "KNOWN_KNOBS catalogue (tools/dewrite_lint.py); "
                     "register new environment knobs there and "
                     "document them in README.md"))

    # Catalogue lockstep: every quoted DEWRITE_* literal in env.cc is a
    # knownKnobs() entry (its env calls take the name as a parameter),
    # so set equality with KNOWN_KNOBS proves the C++ mirror is in sync.
    if rel == KNOB_MIRROR_FILE and "knownKnobs" in text:
        found: dict[str, int] = {}
        for lineno, line in enumerate(lines, 1):
            for match in KNOB_LITERAL_RE.finditer(line):
                found.setdefault(match.group(1), lineno)
        for knob in sorted(set(found) - KNOWN_KNOBS):
            violations.append(
                (rel, found[knob], ENV_KNOB_RULE,
                 f"knownKnobs() lists '{knob}', which is not in the "
                 "KNOWN_KNOBS catalogue (tools/dewrite_lint.py); the "
                 "two lists must stay in lockstep"))
        for knob in sorted(KNOWN_KNOBS - set(found)):
            violations.append(
                (rel, 1, ENV_KNOB_RULE,
                 f"'{knob}' is in the KNOWN_KNOBS catalogue but "
                 "missing from knownKnobs() in src/common/env.cc; the "
                 "two lists must stay in lockstep"))

    violations.sort(key=lambda row: (row[0], row[1], row[2]))
    return violations


def collect_files(build_dir: str,
                  only: list[str] | None) -> list[str]:
    """Repo-relative .cc/.hh files: compile-DB TUs plus header glob."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        raise SystemExit(
            f"error: {db_path} not found; configure with "
            "'cmake -B build -S .' first")
    with open(db_path, encoding="utf-8") as handle:
        db = json.load(handle)

    files: set[str] = set()
    for entry in db:
        path = entry["file"]
        absolute = os.path.normpath(
            path if os.path.isabs(path)
            else os.path.join(entry.get("directory", "."), path))
        rel = os.path.relpath(absolute, REPO_ROOT).replace(os.sep, "/")
        if not rel.startswith(".."):
            files.add(rel)
    for pattern in ("src/**/*.hh", "tests/**/*.hh", "bench/**/*.hh",
                    "examples/**/*.hh"):
        for absolute in glob.glob(os.path.join(REPO_ROOT, pattern),
                                  recursive=True):
            files.add(os.path.relpath(absolute, REPO_ROOT)
                      .replace(os.sep, "/"))

    scoped = {rel for rel in files
              if rel.split("/", 1)[0] in ("src", "tests", "bench",
                                          "examples")}
    if only:
        scoped = {rel for rel in scoped
                  if any(rel == o or
                         rel.startswith(o.rstrip("/") + "/")
                         for o in only)}
    return sorted(scoped)


def self_test() -> int:
    """Seeded-violation check: every rule must fire on a synthetic
    file and stay quiet when suppressed."""
    seeded = "\n".join([
        "#include <unordered_map>",
        "std::unordered_map<int, int> m;",          # container   (2)
        "int r = rand();",                          # nondet      (3)
        "auto t = time(nullptr);",                  # nondet      (4)
        "std::hash<Foo *> h;",                      # nondet      (5)
        "table.forEach([](auto k, auto v) {});",    # unsorted    (6)
        "// dewrite-lint: hot",
        "int hotFn() {",
        "    v.push_back(1);",                      # hot alloc   (9)
        "    return new int[2][0];",                # hot alloc   (10)
        "}",
        "void coldFn() { v.push_back(2); }",        # NOT hot: ok
        "const char *e = std::getenv(\"DEWRITE_X\");",  # funnel (13)
        "const char *f = envRaw(\"DEWRITE_Y\");",   # fail-fast  (14)
        "// std::unordered_set<int> in a comment is fine",
        "const char *s = \"rand( in a string is fine\";",
        "std::uint64_t n = envUint(\"DEWRITE_SHRADS\", 1, 1, 8);",
        "std::uint64_t k = envUint(\"DEWRITE_SHARDS\", 1, 1, 64);",
        "assert(x > 0);",                           # raw assert (19)
        "static_assert(sizeof(int) == 4, \"x\");",  # NOT raw: ok
        "DEWRITE_CHECK(x > 0, \"x\");",             # NOT raw: ok
    ])
    rows = lint_text("src/seeded.cc", seeded)
    fired = {(line, rule) for _f, line, rule, _m in rows}
    expect = {
        (2, "no-std-hash-container"),
        (3, "no-nondeterminism"),
        (4, "no-nondeterminism"),
        (5, "no-nondeterminism"),
        (6, "unsorted-iteration"),
        (9, "hot-path-alloc"),
        (10, "hot-path-alloc"),
        (13, "env-getenv-funnel"),
        (13, "env-knob-registry"),   # DEWRITE_X is not a real knob
        (14, "env-fail-fast"),
        (14, "env-knob-registry"),   # neither is DEWRITE_Y
        (17, "env-knob-registry"),   # typo'd DEWRITE_SHRADS caught
        # line 18: DEWRITE_SHARDS is registered -> silent
        (19, "no-raw-assert"),
        # lines 20-21: static_assert / DEWRITE_CHECK -> silent
    }
    assert fired == expect, f"seeded mismatch: {sorted(fired)}"

    # Same-line and previous-line allow() suppress; allow-file
    # suppresses everywhere; unknown rule names are flagged.
    suppressed = "\n".join([
        "// dewrite-lint: allow-file(no-nondeterminism)",
        "int r = rand();",
        "// dewrite-lint: allow(unsorted-iteration) stats dump only",
        "table.forEach([](auto k, auto v) {});",
        "m.forEach(f); // dewrite-lint: allow(unsorted-iteration)",
        "// dewrite-lint: allow(no-such-rule)",
    ])
    rows = lint_text("src/suppressed.cc", suppressed)
    assert [(r[1], r[2]) for r in rows] == [(6, "unknown-rule")], rows

    # Scope: containers are legal in tests/ and bench/; getenv is not
    # legal in tests/; everything is exempt in the env funnel itself.
    assert lint_text("tests/oracle.cc",
                     "std::unordered_map<int, int> m;") == []
    assert lint_text("bench/oracle.cc",
                     "std::unordered_set<int> s;") == []
    assert lint_text("tests/sneaky.cc", "getenv(\"PATH\");") != []
    assert lint_text("src/common/env.cc", "std::getenv(n);") == []

    # forEachSorted never trips the unsorted-iteration rule.
    assert lint_text("src/x.cc", "m.forEachSorted(f);") == []

    # no-raw-assert: tests/ and bench/ may assert freely, allow()
    # names a deliberate exception, and member .assert( (a DSL-ish
    # method) is not the C macro.
    assert lint_text("tests/t.cc", "assert(ok);") == []
    assert lint_text("bench/b.cc", "assert(ok);") == []
    assert lint_text(
        "src/x.cc",
        "// dewrite-lint: allow(no-raw-assert) ffi contract\n"
        "assert(handle != nullptr);") == []
    assert lint_text("src/x.cc", "checker.assert(ok);") == []

    # env-knob-registry: registered knobs pass in every scoped dir,
    # setenv of an unknown knob fires in tests/, allow() suppresses,
    # a knob mentioned only in a comment is fine, and the env unit
    # test's fixture variable is exempt.
    assert lint_text("tests/t.cc",
                     "setenv(\"DEWRITE_AUDIT\", \"1\", 1);") == []
    rows = lint_text("tests/t.cc",
                     "setenv(\"DEWRITE_BOGUS\", \"1\", 1);")
    assert [(r[1], r[2]) for r in rows] == [(1, "env-knob-registry")], \
        rows
    assert lint_text(
        "tests/t.cc",
        "// dewrite-lint: allow(env-knob-registry) fixture\n"
        "setenv(\"DEWRITE_BOGUS\", \"1\", 1);") == []
    assert lint_text("tests/t.cc",
                     "// envUint(\"DEWRITE_BOGUS\") in a comment") == []
    assert lint_text("tests/common/env_test.cc",
                     "setenv(\"DEWRITE_ENV_TEST_VAR\", \"1\", 1);") == []

    # Telemetry knobs are registered; a typo'd one is caught like any
    # other unknown knob.
    assert lint_text(
        "src/t.cc",
        "auto p = envUint(\"DEWRITE_TELEMETRY_EVERY\", 16, 1, 8);") == []
    rows = lint_text(
        "src/t.cc",
        "auto p = envUint(\"DEWRITE_TELEMETRY_EVRY\", 16, 1, 8);")
    assert [(r[1], r[2]) for r in rows] == [(1, "env-knob-registry")], \
        rows

    # knownKnobs() lockstep: the full catalogue passes, an extra or a
    # missing entry in env.cc is flagged against the mirror rule.
    catalogue = "const char *knownKnobs[] = {\n" + "\n".join(
        f"    \"{knob}\"," for knob in sorted(KNOWN_KNOBS)) + "\n};"
    assert lint_text("src/common/env.cc", catalogue) == []
    rows = lint_text("src/common/env.cc",
                     catalogue.replace("};", "    \"DEWRITE_TYPO\",\n};"))
    assert [(r[2], "DEWRITE_TYPO" in r[3]) for r in rows] == \
        [("env-knob-registry", True)], rows
    rows = lint_text("src/common/env.cc",
                     catalogue.replace("    \"DEWRITE_TELEMETRY\",\n",
                                       ""))
    assert [(r[2], "missing from knownKnobs()" in r[3])
            for r in rows] == [("env-knob-registry", True)], rows

    print("dewrite_lint self-test: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__.split("\n", 1)[1])
    parser.add_argument("paths", nargs="*",
                        help="restrict to these repo-relative files or "
                             "directories (default: all)")
    parser.add_argument("--build-dir",
                        default=os.path.join(REPO_ROOT, "build"),
                        help="build tree holding compile_commands.json "
                             "(default: %(default)s)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation self-test and "
                             "exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            scope = ", ".join(rule.dirs)
            print(f"{rule.name}  [{scope}]\n    {rule.message}")
        print(f"{ENV_KNOB_RULE}  [{', '.join(ENV_KNOB_DIRS)}]\n"
              f"    DEWRITE_* names in env calls must be registered in "
              f"KNOWN_KNOBS ({len(KNOWN_KNOBS)} registered)")
        return 0
    if args.self_test:
        return self_test()

    try:
        files = collect_files(args.build_dir, args.paths or None)
    except SystemExit as err:
        print(err, file=sys.stderr)
        return 2
    if not files:
        print("error: no files selected", file=sys.stderr)
        return 2

    violations = []
    for rel in files:
        with open(os.path.join(REPO_ROOT, rel),
                  encoding="utf-8") as handle:
            violations.extend(lint_text(rel, handle.read()))

    for rel, lineno, rule, message in violations:
        print(f"{rel}:{lineno}: [{rule}] {message}", file=sys.stderr)
    if violations:
        print(f"\ndewrite-lint: {len(violations)} violation(s) in "
              f"{len({v[0] for v in violations})} file(s)",
              file=sys.stderr)
        return 1
    print(f"dewrite-lint clean: {len(files)} files, "
          f"{len(RULES) + 1} rules")
    return 0


if __name__ == "__main__":
    sys.exit(main())
