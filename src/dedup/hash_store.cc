/**
 * @file
 * HashStore implementation.
 */

#include "dedup/hash_store.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dewrite {

ChainView
HashStore::lookup(std::uint64_t hash) const
{
    const Chain *chain = chains_.find(hash);
    if (!chain)
        return ChainView();
    const std::size_t head =
        std::min<std::size_t>(chain->count, Chain::kInline);
    if (chain->count <= Chain::kInline)
        return ChainView(chain->inlineEntries, head, nullptr, 0);
    const std::vector<HashEntry> &spill = spills_[chain->spillSlot];
    return ChainView(chain->inlineEntries, head, spill.data(),
                     spill.size());
}

HashStore::Locator
HashStore::locate(std::uint64_t hash, LineAddr real_addr) const
{
    Locator loc{ chains_.findIndex(hash), kNpos };
    if (loc.chainIdx == kNpos)
        return loc;
    const Chain &chain = chains_.valueAt(loc.chainIdx);
    const std::size_t head =
        std::min<std::size_t>(chain.count, Chain::kInline);
    for (std::size_t i = 0; i < head; ++i) {
        if (chain.inlineEntries[i].realAddr == real_addr) {
            loc.entryIdx = i;
            return loc;
        }
    }
    if (chain.count > Chain::kInline) {
        const std::vector<HashEntry> &spill = spills_[chain.spillSlot];
        for (std::size_t i = 0; i < spill.size(); ++i) {
            if (spill[i].realAddr == real_addr) {
                loc.entryIdx = Chain::kInline + i;
                return loc;
            }
        }
    }
    return loc;
}

HashEntry &
HashStore::entryAt(Chain &chain, std::size_t i)
{
    if (i < Chain::kInline)
        return chain.inlineEntries[i];
    return spills_[chain.spillSlot][i - Chain::kInline];
}

void
HashStore::appendEntry(Chain &chain, HashEntry entry)
{
    if (chain.count < Chain::kInline) {
        chain.inlineEntries[chain.count] = entry;
    } else {
        if (chain.count == Chain::kInline) {
            // Third entry for this hash: take a spill vector from the
            // pool (or grow it) rather than allocating per chain.
            if (freeSpills_.empty()) {
                chain.spillSlot =
                    static_cast<std::uint32_t>(spills_.size());
                // dewrite-analyze: allow(hot-path-purity) spill-pool growth, only when a hash chain
                // exceeds its two inline slots (rare)
                spills_.emplace_back();
            } else {
                chain.spillSlot = freeSpills_.back();
                freeSpills_.pop_back();
            }
        }
        // dewrite-analyze: allow(hot-path-purity) spill-vector append, rare (chains > 2 entries)
        spills_[chain.spillSlot].push_back(entry);
    }
    ++chain.count;
}

void
HashStore::removeEntry(Chain &chain, std::size_t i)
{
    std::vector<HashEntry> *spill =
        chain.count > Chain::kInline ? &spills_[chain.spillSlot] : nullptr;
    if (i < Chain::kInline) {
        // Shift the inline tail down, then pull the oldest spilled
        // entry in behind it, keeping append order intact.
        for (std::size_t j = i + 1;
             j < std::min<std::size_t>(chain.count, Chain::kInline); ++j)
            chain.inlineEntries[j - 1] = chain.inlineEntries[j];
        if (spill) {
            chain.inlineEntries[Chain::kInline - 1] = spill->front();
            spill->erase(spill->begin());
        }
    } else {
        spill->erase(spill->begin() +
                     static_cast<std::ptrdiff_t>(i - Chain::kInline));
    }
    if (spill && spill->empty()) {
        // dewrite-analyze: allow(hot-path-purity) spill-slot recycling, rare (chain shrank below 3)
        freeSpills_.push_back(chain.spillSlot);
        chain.spillSlot = 0;
    }
    --chain.count;
}

void
HashStore::insert(std::uint64_t hash, LineAddr real_addr)
{
    auto [chain, inserted] = chains_.tryEmplace(hash);
    if (!inserted) {
        const std::size_t head =
            std::min<std::size_t>(chain->count, Chain::kInline);
        for (std::size_t i = 0; i < head; ++i) {
            if (chain->inlineEntries[i].realAddr == real_addr)
                panic("hash store: duplicate insert of slot %llu",
                      static_cast<unsigned long long>(real_addr));
        }
        if (chain->count > Chain::kInline) {
            for (const HashEntry &entry : spills_[chain->spillSlot]) {
                if (entry.realAddr == real_addr)
                    panic("hash store: duplicate insert of slot %llu",
                          static_cast<unsigned long long>(real_addr));
            }
        }
    }
    appendEntry(*chain, { real_addr, 1 });
    ++size_;
}

bool
HashStore::addReference(std::uint64_t hash, LineAddr real_addr)
{
    const Locator loc = locate(hash, real_addr);
    if (loc.chainIdx == kNpos)
        panic("hash store: addReference on absent hash 0x%llx",
              static_cast<unsigned long long>(hash));
    if (loc.entryIdx == kNpos)
        panic("hash store: addReference on absent slot %llu",
              static_cast<unsigned long long>(real_addr));
    HashEntry &entry =
        entryAt(chains_.valueAt(loc.chainIdx), loc.entryIdx);
    if (entry.reference == kMaxReference) {
        saturationRefusals_.increment();
        return false;
    }
    ++entry.reference;
    return true;
}

bool
HashStore::dropReference(std::uint64_t hash, LineAddr real_addr)
{
    const Locator loc = locate(hash, real_addr);
    if (loc.chainIdx == kNpos)
        panic("hash store: dropReference on absent hash 0x%llx",
              static_cast<unsigned long long>(hash));
    if (loc.entryIdx == kNpos)
        panic("hash store: dropReference on absent slot %llu",
              static_cast<unsigned long long>(real_addr));
    Chain &chain = chains_.valueAt(loc.chainIdx);
    HashEntry &entry = entryAt(chain, loc.entryIdx);
    // A saturated count no longer tracks the true reference number,
    // so it is pinned: the record outlives its references rather
    // than risking premature reclamation.
    if (entry.reference == kMaxReference)
        return false;
    if (--entry.reference > 0)
        return false;
    removeEntry(chain, loc.entryIdx);
    --size_;
    if (chain.count == 0)
        chains_.eraseIndex(loc.chainIdx);
    return true;
}

void
HashStore::setStrongFp(std::uint64_t hash, LineAddr real_addr,
                       const StrongFp &fp)
{
    const Locator loc = locate(hash, real_addr);
    if (loc.entryIdx == kNpos)
        panic("hash store: setStrongFp on absent record (hash 0x%llx, "
              "slot %llu)",
              static_cast<unsigned long long>(hash),
              static_cast<unsigned long long>(real_addr));
    HashEntry &entry =
        entryAt(chains_.valueAt(loc.chainIdx), loc.entryIdx);
    entry.strongFp = fp;
    entry.strongValid = true;
}

const StrongFp *
HashStore::strongFpOf(std::uint64_t hash, LineAddr real_addr) const
{
    const Locator loc = locate(hash, real_addr);
    if (loc.entryIdx == kNpos)
        return nullptr;
    const HashEntry &entry =
        const_cast<HashStore *>(this)->entryAt(
            const_cast<Chain &>(chains_.valueAt(loc.chainIdx)),
            loc.entryIdx);
    return entry.strongValid ? &entry.strongFp : nullptr;
}

std::uint8_t
HashStore::reference(std::uint64_t hash, LineAddr real_addr) const
{
    const Locator loc = locate(hash, real_addr);
    if (loc.entryIdx == kNpos)
        return 0;
    return const_cast<HashStore *>(this)
        ->entryAt(const_cast<Chain &>(chains_.valueAt(loc.chainIdx)),
                  loc.entryIdx)
        .reference;
}

void
HashStore::restore(std::uint64_t hash, LineAddr real_addr,
                   std::uint64_t references)
{
    const std::uint8_t clamped = static_cast<std::uint8_t>(
        std::min<std::uint64_t>(references, kMaxReference));
    auto [chain, inserted] = chains_.tryEmplace(hash);
    if (!inserted) {
        const std::size_t head =
            std::min<std::size_t>(chain->count, Chain::kInline);
        for (std::size_t i = 0; i < head; ++i) {
            if (chain->inlineEntries[i].realAddr == real_addr)
                panic("hash store: duplicate restore of slot %llu",
                      static_cast<unsigned long long>(real_addr));
        }
        if (chain->count > Chain::kInline) {
            for (const HashEntry &entry : spills_[chain->spillSlot]) {
                if (entry.realAddr == real_addr)
                    panic("hash store: duplicate restore of slot %llu",
                          static_cast<unsigned long long>(real_addr));
            }
        }
    }
    appendEntry(*chain, { real_addr, clamped });
    ++size_;
}

std::size_t
HashStore::collidingEntries() const
{
    std::size_t colliding = 0;
    // dewrite-lint: allow(unsorted-iteration) commutative sum
    chains_.forEach([&](std::uint64_t, const Chain &chain) {
        if (chain.count > 1)
            colliding += chain.count;
    });
    return colliding;
}

std::size_t
HashStore::maxChainLength() const
{
    std::size_t longest = 0;
    // dewrite-lint: allow(unsorted-iteration) commutative max
    chains_.forEach([&](std::uint64_t, const Chain &chain) {
        longest = std::max<std::size_t>(longest, chain.count);
    });
    return longest;
}

std::size_t
HashStore::spilledChains() const
{
    std::size_t spilled = 0;
    // dewrite-lint: allow(unsorted-iteration) commutative count
    chains_.forEach([&](std::uint64_t, const Chain &chain) {
        if (chain.count > Chain::kInline)
            ++spilled;
    });
    return spilled;
}

} // namespace dewrite
