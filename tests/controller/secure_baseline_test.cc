/**
 * @file
 * SecureBaselineController tests.
 */

#include "controller/secure_baseline.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace dewrite {
namespace {

SystemConfig &
config()
{
    static SystemConfig instance = [] {
        SystemConfig c;
        c.memory.numLines = 1 << 16;
        return c;
    }();
    return instance;
}

AesKey
key()
{
    AesKey k{};
    k[0] = 0x10;
    return k;
}

TEST(SecureBaselineTest, WriteReadRoundTrip)
{
    NvmDevice device(config());
    SecureBaselineController ctrl(config(), device, key());
    Rng rng(101);
    const Line data = Line::random(rng);
    ctrl.write(5, data, 0);
    const CtrlReadResult read = ctrl.read(5, 1000000);
    EXPECT_TRUE(read.valid);
    EXPECT_EQ(read.data, data);
}

TEST(SecureBaselineTest, DataIsEncryptedAtRest)
{
    NvmDevice device(config());
    SecureBaselineController ctrl(config(), device, key());
    const Line data = Line::filled(0x5a);
    ctrl.write(5, data, 0);
    EXPECT_NE(device.peek(5), data);
}

TEST(SecureBaselineTest, WriteLatencyIncludesCounterAesAndCellWrite)
{
    NvmDevice device(config());
    SecureBaselineController ctrl(config(), device, key());
    const CtrlWriteResult write = ctrl.write(0, Line(), 0);
    // Counter-cache miss (NVM read) + AES + cell write at minimum.
    EXPECT_GE(write.latency, config().timing.nvmRead +
                                 config().timing.aesLine +
                                 config().timing.nvmWrite);
    EXPECT_FALSE(write.eliminated);
}

TEST(SecureBaselineTest, ReadHidesDecryptionBehindArrayAccess)
{
    NvmDevice device(config());
    SecureBaselineController ctrl(config(), device, key());
    ctrl.write(0, Line::filled(1), 0);
    // Counter now cached: the read's latency is max(array, OTP) + XOR,
    // far below array + AES serialized.
    const CtrlReadResult read = ctrl.read(0, 10000000);
    EXPECT_LT(read.latency,
              config().timing.nvmRead + config().timing.aesLine);
    EXPECT_GE(read.latency, config().timing.aesLine);
}

TEST(SecureBaselineTest, EveryWriteIsProgrammedFullLine)
{
    NvmDevice device(config());
    SecureBaselineController ctrl(config(), device, key());
    const Line data = Line::filled(0x11);
    ctrl.write(1, data, 0);
    ctrl.write(2, data, 0); // Identical content: still written.
    EXPECT_EQ(ctrl.writesEliminated(), 0u);
    EXPECT_EQ(ctrl.dataBitsProgrammed(), 2 * kLineBits);
    EXPECT_TRUE(device.isWritten(1));
    EXPECT_TRUE(device.isWritten(2));
}

TEST(SecureBaselineTest, RewriteDecryptsWithLatestCounter)
{
    NvmDevice device(config());
    SecureBaselineController ctrl(config(), device, key());
    Rng rng(102);
    const Line first = Line::random(rng);
    const Line second = Line::random(rng);
    ctrl.write(9, first, 0);
    ctrl.write(9, second, 0);
    EXPECT_EQ(ctrl.read(9, 0).data, second);
}

TEST(SecureBaselineTest, ShredderEliminatesZeroWrites)
{
    NvmDevice device(config());
    SecureBaselineController::Options options;
    options.shredZeroLines = true;
    SecureBaselineController ctrl(config(), device, key(), options);

    const CtrlWriteResult write = ctrl.write(3, Line(), 0);
    EXPECT_TRUE(write.eliminated);
    EXPECT_FALSE(device.isWritten(3));
    const CtrlReadResult read = ctrl.read(3, 0);
    EXPECT_TRUE(read.valid);
    EXPECT_TRUE(read.data.isZero());
    // Shredded reads skip the array entirely.
    EXPECT_LT(read.latency, config().timing.nvmRead);
}

TEST(SecureBaselineTest, ShredderClearsOnRealData)
{
    NvmDevice device(config());
    SecureBaselineController::Options options;
    options.shredZeroLines = true;
    SecureBaselineController ctrl(config(), device, key(), options);
    Rng rng(103);
    const Line data = Line::random(rng);
    ctrl.write(3, Line(), 0);
    ctrl.write(3, data, 0);
    EXPECT_EQ(ctrl.read(3, 0).data, data);
}

TEST(SecureBaselineTest, DcwReducesProgrammedBits)
{
    NvmDevice device(config());
    SecureBaselineController::Options options;
    options.technique = BitTechnique::Dcw;
    SecureBaselineController ctrl(config(), device, key(), options);
    Rng rng(104);
    ctrl.write(1, Line::random(rng), 0);
    ctrl.write(1, Line::random(rng), 0);
    // Two writes at ~50% flips each stay well under two full lines.
    EXPECT_LT(ctrl.dataBitsProgrammed(), 2 * kLineBits * 6 / 10);
    EXPECT_GT(ctrl.dataBitsProgrammed(), 2 * kLineBits * 4 / 10);
}

TEST(SecureBaselineTest, ReadOfUnwrittenIsInvalid)
{
    NvmDevice device(config());
    SecureBaselineController ctrl(config(), device, key());
    const CtrlReadResult read = ctrl.read(123, 0);
    EXPECT_FALSE(read.valid);
}

TEST(SecureBaselineTest, EnergyGrowsWithTraffic)
{
    NvmDevice device(config());
    SecureBaselineController ctrl(config(), device, key());
    const Energy before = ctrl.controllerEnergy();
    ctrl.write(0, Line::filled(2), 0);
    const Energy after_write = ctrl.controllerEnergy();
    EXPECT_GE(after_write - before, config().energy.aesLine());
    ctrl.read(0, 0);
    EXPECT_GT(ctrl.controllerEnergy(), after_write);
}

TEST(SecureBaselineTest, NameReflectsOptions)
{
    NvmDevice device(config());
    SecureBaselineController plain(config(), device, key());
    EXPECT_EQ(plain.name(), "secure-baseline");

    SecureBaselineController::Options options;
    options.technique = BitTechnique::Fnw;
    options.shredZeroLines = true;
    SecureBaselineController fancy(config(), device, key(), options);
    EXPECT_EQ(fancy.name(), "secure-baseline+FNW+shredder");
}

} // namespace
} // namespace dewrite
