/**
 * @file
 * FlatMap — the open-addressing hash map of the flat hot-path layer.
 *
 * Every simulated memory access walks several metadata tables; with the
 * crypto kernels reduced to tens of nanoseconds (PR 1), the node-based
 * std::unordered_map's pointer chase and per-node allocation became the
 * dominant cost between events. FlatMap keeps keys and values inline in
 * one contiguous slot array (power-of-two capacity, linear probing), so
 * a lookup is one mixed hash, one masked index, and a short sequential
 * scan — no allocation ever happens on the access path once reserve()d.
 *
 * Erase uses backward-shift deletion instead of tombstones: the probe
 * chain after the hole is compacted on the spot, so load factor — and
 * with it probe length — depends only on the live contents, never on
 * the erase history.
 *
 * Determinism contract: iteration (forEach) runs in slot order, which
 * is a pure function of the operation sequence — identical across runs,
 * machines, and thread counts (each simulated System owns its own
 * maps). User-visible output must not depend even on that; emit through
 * forEachSorted, which visits keys in ascending order.
 */

#ifndef DEWRITE_COMMON_FLAT_MAP_HH
#define DEWRITE_COMMON_FLAT_MAP_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/huge_pages.hh"

namespace dewrite {

/**
 * Finalizing mix for power-of-two masking: table indices must depend on
 * every input bit, or line addresses (low-entropy, sequential) would
 * cluster. splitmix64's finalizer is bijective and well distributed.
 */
inline std::uint64_t
flatMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Read-intent cache-warming hint. Purely advisory: it may load the
 * addressed cache line early, but never changes program state, so it is
 * always safe to issue speculatively (wrong guesses cost bandwidth
 * only).
 */
inline void
hostPrefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
    (void)p;
#endif
}

/** Default hasher: integral keys go through the full-avalanche mix. */
template <typename K>
struct FlatHash
{
    std::uint64_t
    operator()(const K &key) const
    {
        static_assert(std::is_integral_v<K>,
                      "provide a hasher for non-integral keys");
        return flatMix64(static_cast<std::uint64_t>(key));
    }
};

template <typename K, typename V, typename Hasher = FlatHash<K>>
class FlatMap
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    FlatMap() = default;

    /** Pre-sizes for @p expected entries; never shrinks. */
    explicit FlatMap(std::size_t expected) { reserve(expected); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Slots in the backing array (testing / load inspection). */
    std::size_t capacity() const { return slots_.size(); }

    /**
     * Ensures @p expected entries fit without another rehash. Growth
     * keeps the load factor at or below ~0.7.
     */
    void
    reserve(std::size_t expected)
    {
        std::size_t needed = kMinCapacity;
        while (needed * 7 < expected * 10)
            needed <<= 1;
        if (needed > slots_.size())
            rehash(needed);
    }

    const V *
    find(const K &key) const
    {
        const std::size_t idx = findIndex(key);
        return idx == npos ? nullptr : &slots_[idx].value;
    }

    V *
    find(const K &key)
    {
        const std::size_t idx = findIndex(key);
        return idx == npos ? nullptr : &slots_[idx].value;
    }

    bool contains(const K &key) const { return findIndex(key) != npos; }

    /** Slot index of @p key, or npos. Stable until the next mutation. */
    // dewrite-lint: hot
    std::size_t
    findIndex(const K &key) const
    {
        if (size_ == 0)
            return npos;
        std::size_t idx = hasher_(key) & mask_;
        while (slots_[idx].used) {
            if (slots_[idx].key == key)
                return idx;
            idx = (idx + 1) & mask_;
        }
        return npos;
    }

    /**
     * Warms the cache line @p key's probe sequence starts at. A pure
     * hint: no slot, size, or iteration state changes — the std-oracle
     * property tests interleave it freely with every mutation.
     */
    // dewrite-lint: hot
    void
    prefetch(const K &key) const
    {
        if (slots_.empty())
            return;
        hostPrefetchRead(&slots_[hasher_(key) & mask_]);
    }

    const V &valueAt(std::size_t idx) const { return slots_[idx].value; }
    V &valueAt(std::size_t idx) { return slots_[idx].value; }
    const K &keyAt(std::size_t idx) const { return slots_[idx].key; }

    /** Inserts default-constructed V if absent (std::map semantics). */
    V &
    operator[](const K &key)
    {
        return *tryEmplace(key).first;
    }

    /**
     * Inserts (key, V(args...)) if absent.
     * @return the value slot and whether an insert happened.
     */
    template <typename... Args>
    std::pair<V *, bool>
    tryEmplace(const K &key, Args &&...args)
    {
        growIfNeeded();
        std::size_t idx = hasher_(key) & mask_;
        while (slots_[idx].used) {
            if (slots_[idx].key == key)
                return { &slots_[idx].value, false };
            idx = (idx + 1) & mask_;
        }
        slots_[idx].used = true;
        slots_[idx].key = key;
        slots_[idx].value = V(std::forward<Args>(args)...);
        ++size_;
        return { &slots_[idx].value, true };
    }

    /** Removes @p key; returns whether it was present. */
    bool
    erase(const K &key)
    {
        const std::size_t idx = findIndex(key);
        if (idx == npos)
            return false;
        eraseIndex(idx);
        return true;
    }

    /**
     * Removes the entry at @p idx (from findIndex) by backward-shift:
     * every displaced follower of the probe chain moves one hole
     * closer to its ideal slot, so no tombstone is left behind.
     */
    void
    eraseIndex(std::size_t idx)
    {
        std::size_t hole = idx;
        std::size_t next = (hole + 1) & mask_;
        while (slots_[next].used) {
            const std::size_t ideal = hasher_(slots_[next].key) & mask_;
            // The follower may move into the hole only if the hole lies
            // between its ideal slot and its current one (cyclically);
            // moving it before its ideal slot would break its chain.
            if (((next - ideal) & mask_) >= ((next - hole) & mask_)) {
                slots_[hole] = std::move(slots_[next]);
                hole = next;
            }
            next = (next + 1) & mask_;
        }
        slots_[hole].used = false;
        slots_[hole].key = K{};
        slots_[hole].value = V{};
        --size_;
    }

    /** Drops every entry; capacity is kept. */
    void
    clear()
    {
        for (Slot &slot : slots_)
            slot = Slot{};
        size_ = 0;
    }

    /**
     * Visits every (key, value) in slot order — deterministic for a
     * deterministic operation history, but not sorted. Hot-path safe
     * (no allocation). Do not emit user-visible output from this
     * order; use forEachSorted.
     */
    template <typename Visitor>
    void
    forEach(Visitor &&visit) const
    {
        for (const Slot &slot : slots_) {
            if (slot.used)
                visit(slot.key, slot.value);
        }
    }

    /** Visits every (key, value) in ascending key order. */
    template <typename Visitor>
    void
    forEachSorted(Visitor &&visit) const
    {
        // dewrite-analyze: allow(hot-path-purity) audit/report path only, never per-event
        std::vector<std::size_t> order;
        // dewrite-analyze: allow(hot-path-purity) audit/report path only, never per-event
        order.reserve(size_);
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].used)
                // dewrite-analyze: allow(hot-path-purity) audit/report path only, never per-event
                order.push_back(i);
        }
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return slots_[a].key < slots_[b].key;
                  });
        for (std::size_t i : order)
            visit(slots_[i].key, slots_[i].value);
    }

  private:
    struct Slot
    {
        K key{};
        V value{};
        bool used = false;
    };

    static constexpr std::size_t kMinCapacity = 16;

    void
    growIfNeeded()
    {
        if (slots_.empty())
            rehash(kMinCapacity);
        else if ((size_ + 1) * 10 > slots_.size() * 7)
            rehash(slots_.size() * 2);
    }

    void
    rehash(std::size_t new_capacity)
    {
        SlotVec old = std::move(slots_);
        slots_.assign(new_capacity, Slot{});
        mask_ = new_capacity - 1;
        for (Slot &slot : old) {
            if (!slot.used)
                continue;
            std::size_t idx = hasher_(slot.key) & mask_;
            while (slots_[idx].used)
                idx = (idx + 1) & mask_;
            slots_[idx] = std::move(slot);
        }
    }

    /**
     * Huge-page-backed once the table crosses ~1 MiB: large FlatMaps
     * (hash store, spill tables) are probed at mixed indices, so TLB
     * reach dominates their host cost. Small tables use the plain heap.
     */
    using SlotVec = std::vector<Slot, HugeAwareAllocator<Slot>>;

    SlotVec slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    Hasher hasher_{};
};

/** Membership-only companion of FlatMap (same probing and guarantees). */
template <typename K, typename Hasher = FlatHash<K>>
class FlatSet
{
  public:
    FlatSet() = default;
    explicit FlatSet(std::size_t expected) : map_(expected) {}

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    // dewrite-analyze: allow(hot-path-purity) construction-time pre-sizing;
    // the hot edge is a member-name over-approximation
    void reserve(std::size_t expected) { map_.reserve(expected); }
    bool contains(const K &key) const { return map_.contains(key); }
    void prefetch(const K &key) const { map_.prefetch(key); }
    bool insert(const K &key) { return map_.tryEmplace(key).second; }
    bool erase(const K &key) { return map_.erase(key); }
    void clear() { map_.clear(); }

    template <typename Visitor>
    void
    forEachSorted(Visitor &&visit) const
    {
        map_.forEachSorted([&](const K &key, const Empty &) { visit(key); });
    }

  private:
    struct Empty
    {
    };
    FlatMap<K, Empty, Hasher> map_;
};

} // namespace dewrite

#endif // DEWRITE_COMMON_FLAT_MAP_HH
