/**
 * @file
 * Environment helpers implementation — the only std::getenv call sites
 * in the tree (enforced by dewrite-lint's env-validation rule).
 */

#include "common/env.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"

namespace dewrite {

const char *
envRaw(const char *name)
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): knobs are read once at
    // startup, before any worker thread exists; nothing calls setenv
    // concurrently (tests set knobs from their single driver thread).
    return std::getenv(name);
}

bool
envFlag(const char *name, bool fallback)
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): see envRaw above.
    const char *value = std::getenv(name);
    if (!value)
        return fallback;
    if (std::strcmp(value, "0") == 0)
        return false;
    if (std::strcmp(value, "1") == 0)
        return true;
    fatal("%s=\"%s\" is not 0 or 1", name, value);
}

std::uint64_t
envUint(const char *name, std::uint64_t fallback, std::uint64_t min,
        std::uint64_t max)
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): see envRaw above.
    const char *value = std::getenv(name);
    if (!value)
        return fallback;
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0' || value[0] == '-')
        fatal("%s=\"%s\" is not a non-negative integer", name, value);
    if (errno == ERANGE || parsed < min || parsed > max) {
        fatal("%s=\"%s\" out of range (%llu..%llu)", name, value,
              static_cast<unsigned long long>(min),
              static_cast<unsigned long long>(max));
    }
    return parsed;
}

std::size_t
envChoice(const char *name, std::size_t fallback,
          const char *const *names, std::size_t count)
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): see envRaw above.
    const char *value = std::getenv(name);
    if (!value)
        return fallback;
    for (std::size_t i = 0; i < count; ++i) {
        if (std::strcmp(value, names[i]) == 0)
            return i;
    }
    std::string accepted;
    for (std::size_t i = 0; i < count; ++i) {
        if (i > 0)
            accepted += ", ";
        accepted += names[i];
    }
    fatal("%s=\"%s\" is not one of: %s", name, value, accepted.c_str());
}

const std::vector<const char *> &
knownKnobs()
{
    // Keep sorted and in lockstep with KNOWN_KNOBS in
    // tools/dewrite_lint.py (the lint cross-checks this list).
    static const std::vector<const char *> knobs = {
        "DEWRITE_AUDIT",
        "DEWRITE_AUDIT_EPOCH",
        "DEWRITE_BATCH",
        "DEWRITE_DETECT",
        "DEWRITE_DETECT_EPOCH",
        "DEWRITE_EVENTS",
        "DEWRITE_LOG",
        "DEWRITE_SHARDS",
        "DEWRITE_STAGE_PROFILE",
        "DEWRITE_TELEMETRY",
        "DEWRITE_TELEMETRY_EVERY",
        "DEWRITE_THREADS",
    };
    return knobs;
}

} // namespace dewrite
