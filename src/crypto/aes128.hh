/**
 * @file
 * AES-128 block cipher (FIPS-197), implemented from scratch.
 *
 * DeWrite's memory encryption is built on AES in two modes: counter mode
 * for data lines (the OTP generator of Figure 1) and direct block
 * encryption for the metadata region (Section III-B1). This is a
 * straightforward table-free byte-oriented implementation — the simulator
 * charges AES *time* from TimingConfig, so software speed only matters
 * for simulation throughput, and correctness is what the tests verify
 * (FIPS-197 Appendix C vectors).
 */

#ifndef DEWRITE_CRYPTO_AES128_HH
#define DEWRITE_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

namespace dewrite {

/** A 16-byte AES block. */
using AesBlock = std::array<std::uint8_t, 16>;

/** A 16-byte AES-128 key. */
using AesKey = std::array<std::uint8_t, 16>;

/**
 * AES-128 with a fixed key; the round keys are expanded once at
 * construction.
 */
class Aes128
{
  public:
    explicit Aes128(const AesKey &key);

    /**
     * Encrypts one 16-byte block (T-table implementation — this is the
     * simulator's hottest function: every line encryption, OTP, and
     * dedup confirmation runs 16 of these).
     */
    AesBlock encryptBlock(const AesBlock &plaintext) const;

    /**
     * Byte-oriented straight-from-the-spec encryption, kept as the
     * reference the T-table path is property-tested against.
     */
    AesBlock encryptBlockReference(const AesBlock &plaintext) const;

    /** Decrypts one 16-byte block. */
    AesBlock decryptBlock(const AesBlock &ciphertext) const;

  private:
    static constexpr int kRounds = 10;

    /** Expanded round keys: (kRounds + 1) x 16 bytes. */
    std::array<std::uint8_t, 16 * (kRounds + 1)> roundKeys_;

    void expandKey(const AesKey &key);
};

} // namespace dewrite

#endif // DEWRITE_CRYPTO_AES128_HH
