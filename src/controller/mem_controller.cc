/**
 * @file
 * MemController shared metric registration.
 *
 * The common request accounting registers under "controller.*"; each
 * scheme adds its own metrics (and the legacy StatSet aliases that
 * keep the historical flat names stable) in registerSchemeMetrics().
 */

#include "controller/mem_controller.hh"

namespace dewrite {

void
MemController::writeBatch(const CtrlWriteRequest *requests,
                          CtrlWriteResult *results, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        results[i] =
            write(requests[i].addr, *requests[i].data, requests[i].now);
    }
}

void
MemController::registerMetrics(obs::MetricRegistry &registry) const
{
    obs::MetricRegistry::Scope c = registry.scope("controller");
    c.counter("write_requests", writeRequests_, "write-backs received",
              "writes");
    c.counter("read_requests", readRequests_, "fetches received",
              "reads");
    c.counter("writes_eliminated", writesEliminated_,
              "duplicate writes never programmed");
    c.counter("data_bits_programmed", dataBitsProgrammed_,
              "cells programmed by data writes");
    c.accumulator("write_latency_ps", writeLatency_,
                  "write-back latency (mean)");
    c.accumulator("read_latency_ps", readLatency_,
                  "fetch latency (mean)");
    c.gauge("energy_pj",
            [this] { return static_cast<double>(controllerEnergy()); },
            "controller-side energy");
    registerSchemeMetrics(registry);
}

void
MemController::registerSchemeMetrics(obs::MetricRegistry &) const
{
}

void
MemController::fillStats(StatSet &stats) const
{
    obs::MetricRegistry registry;
    registerMetrics(registry);
    registry.fillStatSet(stats);
}

} // namespace dewrite
