/**
 * @file
 * HashStore tests: chains, references, saturation.
 */

#include "dedup/hash_store.hh"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace dewrite {
namespace {

TEST(HashStoreTest, EmptyLookup)
{
    HashStore store;
    EXPECT_TRUE(store.lookup(0x1234).empty());
    EXPECT_EQ(store.size(), 0u);
}

TEST(HashStoreTest, InsertAndLookup)
{
    HashStore store;
    store.insert(0xaaaa, 7);
    const auto &chain = store.lookup(0xaaaa);
    ASSERT_EQ(chain.size(), 1u);
    EXPECT_EQ(chain[0].realAddr, 7u);
    EXPECT_EQ(chain[0].reference, 1u);
    EXPECT_EQ(store.size(), 1u);
}

// prefetch() is a pure cache hint: hammering it across present,
// absent, and colliding hashes — including on an empty store — must
// not perturb chains, references, or statistics.
TEST(HashStoreTest, PrefetchIsPureHint)
{
    HashStore store;
    store.prefetch(0x1234); // Empty store: must be a safe no-op.
    EXPECT_TRUE(store.lookup(0x1234).empty());

    for (std::uint64_t i = 0; i < 200; ++i) {
        store.prefetch(i);
        store.insert(i % 50, i); // 4-deep chains on 50 hashes.
        store.prefetch(i % 50);
        store.prefetch(i + 1000); // Never-inserted hashes.
    }
    EXPECT_EQ(store.size(), 200u);
    EXPECT_EQ(store.distinctHashes(), 50u);
    EXPECT_EQ(store.maxChainLength(), 4u);
    for (std::uint64_t hash = 0; hash < 50; ++hash) {
        store.prefetch(hash);
        EXPECT_EQ(store.lookup(hash).size(), 4u);
        EXPECT_EQ(store.reference(hash, hash), 1u);
    }
}

TEST(HashStoreTest, CollisionChains)
{
    HashStore store;
    store.insert(0xbbbb, 1);
    store.insert(0xbbbb, 2);
    EXPECT_EQ(store.lookup(0xbbbb).size(), 2u);
    EXPECT_EQ(store.collidingEntries(), 2u);
    EXPECT_EQ(store.maxChainLength(), 2u);
    EXPECT_EQ(store.distinctHashes(), 1u);
}

TEST(HashStoreTest, ReferenceLifecycle)
{
    HashStore store;
    store.insert(0xcccc, 5);
    EXPECT_TRUE(store.addReference(0xcccc, 5));
    EXPECT_EQ(store.reference(0xcccc, 5), 2u);
    EXPECT_FALSE(store.dropReference(0xcccc, 5)); // 2 -> 1, survives.
    EXPECT_TRUE(store.dropReference(0xcccc, 5));  // 1 -> 0, removed.
    EXPECT_TRUE(store.lookup(0xcccc).empty());
    EXPECT_EQ(store.size(), 0u);
}

TEST(HashStoreTest, SaturationRefusesNewReferences)
{
    HashStore store;
    store.insert(0xdddd, 3);
    for (int i = 1; i < 255; ++i)
        EXPECT_TRUE(store.addReference(0xdddd, 3));
    EXPECT_EQ(store.reference(0xdddd, 3), 255u);
    // The 256th reference is refused (Section III-B2).
    EXPECT_FALSE(store.addReference(0xdddd, 3));
    EXPECT_EQ(store.reference(0xdddd, 3), 255u);
    EXPECT_EQ(store.saturationRefusals(), 1u);
}

TEST(HashStoreTest, SaturatedRecordIsPinned)
{
    HashStore store;
    store.insert(0xeeee, 4);
    for (int i = 1; i < 255; ++i)
        store.addReference(0xeeee, 4);
    // Once saturated, drops never free the record: the true count is
    // unknown.
    for (int i = 0; i < 300; ++i)
        EXPECT_FALSE(store.dropReference(0xeeee, 4));
    EXPECT_EQ(store.reference(0xeeee, 4), 255u);
}

TEST(HashStoreTest, DropOnlyAffectsMatchingSlot)
{
    HashStore store;
    store.insert(0xffff, 1);
    store.insert(0xffff, 2);
    EXPECT_TRUE(store.dropReference(0xffff, 1));
    const auto &chain = store.lookup(0xffff);
    ASSERT_EQ(chain.size(), 1u);
    EXPECT_EQ(chain[0].realAddr, 2u);
}

TEST(HashStoreTest, ForEachVisitsEverything)
{
    HashStore store;
    store.insert(1, 10);
    store.insert(2, 20);
    store.insert(2, 30);
    std::size_t visited = 0;
    store.forEach([&](std::uint32_t, const HashEntry &) { ++visited; });
    EXPECT_EQ(visited, 3u);
}

TEST(HashStoreTest, SpillBeyondInlineBuffer)
{
    // Chains hold two entries inline; the third spills to the pool.
    HashStore store;
    store.insert(0xabcd, 1);
    store.insert(0xabcd, 2);
    EXPECT_EQ(store.spilledChains(), 0u);
    store.insert(0xabcd, 3);
    store.insert(0xabcd, 4);
    EXPECT_EQ(store.spilledChains(), 1u);

    const auto chain = store.lookup(0xabcd);
    ASSERT_EQ(chain.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(chain[i].realAddr, i + 1) << "append order broken at "
                                            << i;
    }
    EXPECT_EQ(store.maxChainLength(), 4u);
    EXPECT_EQ(store.collidingEntries(), 4u);
    EXPECT_EQ(store.distinctHashes(), 1u);
}

TEST(HashStoreTest, EraseFromSpilledChainKeepsOrder)
{
    HashStore store;
    for (LineAddr addr = 1; addr <= 5; ++addr)
        store.insert(0x1111, addr);

    // Removing an inline entry pulls the oldest spill entry forward;
    // logical order (append order minus the erased entry) holds.
    EXPECT_TRUE(store.dropReference(0x1111, 2));
    {
        const auto chain = store.lookup(0x1111);
        ASSERT_EQ(chain.size(), 4u);
        const LineAddr expect[] = { 1, 3, 4, 5 };
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_EQ(chain[i].realAddr, expect[i]);
    }

    // Shrinking back to the inline buffer returns the spill to the pool.
    EXPECT_TRUE(store.dropReference(0x1111, 4));
    EXPECT_TRUE(store.dropReference(0x1111, 5));
    EXPECT_EQ(store.spilledChains(), 0u);
    {
        const auto chain = store.lookup(0x1111);
        ASSERT_EQ(chain.size(), 2u);
        EXPECT_EQ(chain[0].realAddr, 1u);
        EXPECT_EQ(chain[1].realAddr, 3u);
    }
}

TEST(HashStoreTest, SpillPoolIsRecycled)
{
    // Growing a second chain after the first shrank must reuse the
    // freed spill vector rather than growing the pool.
    HashStore store;
    for (LineAddr addr = 1; addr <= 4; ++addr)
        store.insert(0xaa, addr);
    EXPECT_EQ(store.spilledChains(), 1u);
    for (LineAddr addr = 1; addr <= 4; ++addr)
        store.dropReference(0xaa, addr);
    EXPECT_EQ(store.spilledChains(), 0u);
    EXPECT_EQ(store.size(), 0u);

    for (LineAddr addr = 10; addr <= 13; ++addr)
        store.insert(0xbb, addr);
    EXPECT_EQ(store.spilledChains(), 1u);
    const auto chain = store.lookup(0xbb);
    ASSERT_EQ(chain.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(chain[i].realAddr, 10 + i);
}

TEST(HashStoreTest, ReferencesTrackedPerEntryInSpilledChain)
{
    HashStore store;
    for (LineAddr addr = 1; addr <= 4; ++addr)
        store.insert(0xcc, addr);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(store.addReference(0xcc, 4)); // Spilled entry.
    EXPECT_EQ(store.reference(0xcc, 4), 4u);
    EXPECT_EQ(store.reference(0xcc, 1), 1u);
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(store.dropReference(0xcc, 4));
    EXPECT_TRUE(store.dropReference(0xcc, 4));
    EXPECT_EQ(store.lookup(0xcc).size(), 3u);
}

TEST(HashStoreTest, RestoreInstallsClampedCount)
{
    HashStore store;
    store.restore(0x77, 9, 42);
    EXPECT_EQ(store.reference(0x77, 9), 42u);
    store.restore(0x77, 10, 1000); // Above the cap: clamps to 255.
    EXPECT_EQ(store.reference(0x77, 10), 255u);
    EXPECT_EQ(store.size(), 2u);
}

TEST(HashStoreTest, ForEachAscendingHashChainOrderWithin)
{
    HashStore store;
    store.insert(300, 1);
    store.insert(5, 2);
    store.insert(300, 3);
    store.insert(300, 4); // Spills.
    store.insert(40, 5);

    std::vector<std::pair<std::uint64_t, LineAddr>> seen;
    store.forEach([&](std::uint64_t hash, const HashEntry &entry) {
        seen.emplace_back(hash, entry.realAddr);
    });
    const std::vector<std::pair<std::uint64_t, LineAddr>> expect = {
        { 5, 2 }, { 40, 5 }, { 300, 1 }, { 300, 3 }, { 300, 4 },
    };
    EXPECT_EQ(seen, expect);
}

TEST(HashStoreDeathTest, DoubleInsertPanics)
{
    HashStore store;
    store.insert(7, 7);
    EXPECT_DEATH(store.insert(7, 7), "duplicate insert");
}

TEST(HashStoreDeathTest, AddReferenceToAbsentPanics)
{
    HashStore store;
    EXPECT_DEATH(store.addReference(9, 9), "absent");
}

TEST(HashStoreDeathTest, DropReferenceFromAbsentPanics)
{
    HashStore store;
    store.insert(5, 1);
    EXPECT_DEATH(store.dropReference(5, 99), "absent");
}

} // namespace
} // namespace dewrite
