/**
 * @file
 * Fail-fast environment helper tests: every DEWRITE_* variable goes
 * through envFlag/envUint, so their rejection behavior is the
 * simulator-wide contract.
 */

#include "common/env.hh"

#include <gtest/gtest.h>

#include <cstdlib>

#include "dedup/dedup_engine.hh"

namespace dewrite {
namespace {

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

constexpr const char *kVar = "DEWRITE_ENV_TEST_VAR";

TEST(EnvRawTest, ForwardsTheEnvironment)
{
    ::unsetenv(kVar);
    EXPECT_EQ(envRaw(kVar), nullptr);
    ScopedEnv env(kVar, "abc");
    EXPECT_STREQ(envRaw(kVar), "abc");
}

TEST(EnvFlagTest, FallbackWhenUnset)
{
    ::unsetenv(kVar);
    EXPECT_FALSE(envFlag(kVar, false));
    EXPECT_TRUE(envFlag(kVar, true));
}

TEST(EnvFlagTest, ParsesZeroAndOne)
{
    {
        ScopedEnv env(kVar, "1");
        EXPECT_TRUE(envFlag(kVar, false));
    }
    {
        ScopedEnv env(kVar, "0");
        EXPECT_FALSE(envFlag(kVar, true));
    }
}

TEST(EnvFlagDeathTest, RejectsAnythingElse)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    for (const char *bad : { "yes", "true", "2", "", " 1" }) {
        ScopedEnv env(kVar, bad);
        EXPECT_EXIT(envFlag(kVar, false),
                    ::testing::ExitedWithCode(1), kVar)
            << "value: \"" << bad << '"';
    }
}

TEST(EnvUintTest, FallbackWhenUnset)
{
    ::unsetenv(kVar);
    // The fallback is returned verbatim, even outside [min, max] —
    // callers use that for "unset means a computed default".
    EXPECT_EQ(envUint(kVar, 0, 1, 10), 0u);
    EXPECT_EQ(envUint(kVar, 42, 1, 10), 42u);
}

TEST(EnvUintTest, ParsesInRangeValues)
{
    ScopedEnv env(kVar, "7");
    EXPECT_EQ(envUint(kVar, 0, 1, 10), 7u);
}

TEST(EnvUintTest, AcceptsTheBounds)
{
    {
        ScopedEnv env(kVar, "1");
        EXPECT_EQ(envUint(kVar, 0, 1, 10), 1u);
    }
    {
        ScopedEnv env(kVar, "10");
        EXPECT_EQ(envUint(kVar, 0, 1, 10), 10u);
    }
}

TEST(EnvUintDeathTest, RejectsMalformedAndOutOfRange)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    for (const char *bad :
         { "seven", "7x", "", "-3", "0", "11",
           "18446744073709551616" }) {
        ScopedEnv env(kVar, bad);
        EXPECT_EXIT(envUint(kVar, 0, 1, 10),
                    ::testing::ExitedWithCode(1), kVar)
            << "value: \"" << bad << '"';
    }
}

TEST(EnvChoiceTest, FallbackWhenUnset)
{
    ::unsetenv(kVar);
    static const char *const names[] = { "alpha", "beta", "gamma" };
    EXPECT_EQ(envChoice(kVar, 2, names, 3), 2u);
}

TEST(EnvChoiceTest, MatchesExactNames)
{
    static const char *const names[] = { "alpha", "beta", "gamma" };
    {
        ScopedEnv env(kVar, "alpha");
        EXPECT_EQ(envChoice(kVar, 2, names, 3), 0u);
    }
    {
        ScopedEnv env(kVar, "gamma");
        EXPECT_EQ(envChoice(kVar, 0, names, 3), 2u);
    }
}

TEST(EnvChoiceDeathTest, RejectsUnknownAndListsTheChoices)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    static const char *const names[] = { "alpha", "beta" };
    for (const char *bad : { "Alpha", "alph", "", " alpha", "2" }) {
        ScopedEnv env(kVar, bad);
        EXPECT_EXIT(envChoice(kVar, 0, names, 2),
                    ::testing::ExitedWithCode(1), "alpha, beta")
            << "value: \"" << bad << '"';
    }
}

TEST(DetectKnobTest, PolicyDefaultsToConfirmRead)
{
    ::unsetenv("DEWRITE_DETECT");
    EXPECT_EQ(detectPolicyFromEnv(), DetectPolicy::ConfirmRead);
}

TEST(DetectKnobTest, PolicyParsesEveryName)
{
    {
        ScopedEnv env("DEWRITE_DETECT", "confirm-read");
        EXPECT_EQ(detectPolicyFromEnv(), DetectPolicy::ConfirmRead);
    }
    {
        ScopedEnv env("DEWRITE_DETECT", "weak-only");
        EXPECT_EQ(detectPolicyFromEnv(), DetectPolicy::WeakOnly);
    }
    {
        ScopedEnv env("DEWRITE_DETECT", "weak-strong");
        EXPECT_EQ(detectPolicyFromEnv(), DetectPolicy::WeakStrong);
    }
    {
        ScopedEnv env("DEWRITE_DETECT", "adaptive");
        EXPECT_EQ(detectPolicyFromEnv(), DetectPolicy::Adaptive);
    }
}

TEST(DetectKnobDeathTest, PolicyRejectsUnknownNames)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    for (const char *bad : { "WeakStrong", "strong", "2", "" }) {
        ScopedEnv env("DEWRITE_DETECT", bad);
        EXPECT_EXIT(detectPolicyFromEnv(),
                    ::testing::ExitedWithCode(1), "DEWRITE_DETECT")
            << "value: \"" << bad << '"';
    }
}

TEST(DetectKnobTest, EpochDefaultsAndParses)
{
    ::unsetenv("DEWRITE_DETECT_EPOCH");
    EXPECT_EQ(detectEpochFromEnv(), 4096u);
    ScopedEnv env("DEWRITE_DETECT_EPOCH", "128");
    EXPECT_EQ(detectEpochFromEnv(), 128u);
}

TEST(DetectKnobDeathTest, EpochRejectsOutOfRangeValues)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    for (const char *bad : { "0", "63", "1048577", "lots" }) {
        ScopedEnv env("DEWRITE_DETECT_EPOCH", bad);
        EXPECT_EXIT(detectEpochFromEnv(),
                    ::testing::ExitedWithCode(1), "DEWRITE_DETECT_EPOCH")
            << "value: \"" << bad << '"';
    }
}

} // namespace
} // namespace dewrite
