/**
 * @file
 * PagedArray / DenseAddrSet / DenseLineStore tests.
 *
 * These are the direct-indexed containers of the flat hot-path layer;
 * the suite pins lazy page allocation, default-value reads, the
 * overflow fallback above the direct range, and the ascending
 * iteration contract of DESIGN.md §5.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/dense_line_store.hh"
#include "common/paged_array.hh"
#include "common/rng.hh"

namespace dewrite {
namespace {

TEST(PagedArray, FindOnUntouchedPageIsNull)
{
    PagedArray<std::uint64_t> array;
    EXPECT_EQ(array.find(0), nullptr);
    EXPECT_EQ(array.find(123456), nullptr);
    EXPECT_EQ(array.get(123456), 0u);
}

TEST(PagedArray, RefAllocatesAndPersists)
{
    // Explicit page size: the assertions below reason about which
    // indices share a page (the default tracks the huge-page size).
    PagedArray<std::uint64_t, 4096> array;
    array.ref(5000) = 42;
    ASSERT_NE(array.find(5000), nullptr);
    EXPECT_EQ(*array.find(5000), 42u);
    EXPECT_EQ(array.get(5000), 42u);

    // Same page, different slot: allocated but default.
    ASSERT_NE(array.find(5001), nullptr);
    EXPECT_EQ(*array.find(5001), 0u);

    // Different page: still untouched.
    EXPECT_EQ(array.find(50000), nullptr);
}

TEST(PagedArray, ReserveSizesDirectoryOnly)
{
    PagedArray<std::uint64_t> array;
    array.reserve(1 << 20);
    // Reserving must not allocate any page: finds still miss.
    EXPECT_EQ(array.find(0), nullptr);
    EXPECT_EQ(array.find((1 << 20) - 1), nullptr);
}

TEST(PagedArray, OverflowAboveDirectRange)
{
    PagedArray<std::uint64_t> array;
    const std::uint64_t huge =
        PagedArray<std::uint64_t>::kMaxDirectEntries + 77;
    EXPECT_EQ(array.find(huge), nullptr);
    array.ref(huge) = 9;
    ASSERT_NE(array.find(huge), nullptr);
    EXPECT_EQ(*array.find(huge), 9u);
    EXPECT_EQ(array.overflowSize(), 1u);
}

TEST(PagedArray, ForEachAscendingIncludingOverflow)
{
    PagedArray<std::uint64_t> array;
    const std::uint64_t huge =
        PagedArray<std::uint64_t>::kMaxDirectEntries + 1;
    array.ref(9000) = 1;
    array.ref(10) = 2;
    array.ref(huge) = 3;

    std::vector<std::uint64_t> seen;
    array.forEach([&](std::uint64_t index, const std::uint64_t &value) {
        if (value != 0)
            seen.push_back(index);
    });
    const std::vector<std::uint64_t> expect = { 10, 9000, huge };
    EXPECT_EQ(seen, expect);
}

TEST(DenseAddrSet, InsertContainsErase)
{
    DenseAddrSet set;
    EXPECT_FALSE(set.contains(3));
    EXPECT_TRUE(set.insert(3));
    EXPECT_FALSE(set.insert(3));
    EXPECT_TRUE(set.contains(3));
    EXPECT_EQ(set.size(), 1u);
    EXPECT_TRUE(set.erase(3));
    EXPECT_FALSE(set.erase(3));
    EXPECT_FALSE(set.contains(3));
    EXPECT_EQ(set.size(), 0u);
}

TEST(DenseAddrSet, SortedIterationSkipsErased)
{
    DenseAddrSet set;
    for (std::uint64_t addr : { 500ul, 2ul, 9000ul, 77ul })
        set.insert(addr);
    set.erase(77);
    std::vector<std::uint64_t> seen;
    set.forEachSorted([&](std::uint64_t addr) { seen.push_back(addr); });
    const std::vector<std::uint64_t> expect = { 2, 500, 9000 };
    EXPECT_EQ(seen, expect);
}

Line
stampedLine(std::uint64_t stamp)
{
    Line line;
    line.setWord64(0, stamp);
    return line;
}

TEST(DenseLineStore, UnwrittenReadsAsAbsent)
{
    DenseLineStore store;
    EXPECT_EQ(store.find(0), nullptr);
    EXPECT_FALSE(store.isWritten(42));
    EXPECT_EQ(store.writtenCount(), 0u);
}

TEST(DenseLineStore, WriteReadRoundTrip)
{
    DenseLineStore store;
    store.refForWrite(300) = stampedLine(7);
    ASSERT_NE(store.find(300), nullptr);
    EXPECT_EQ(store.find(300)->word64(0), 7u);
    EXPECT_TRUE(store.isWritten(300));
    EXPECT_EQ(store.writtenCount(), 1u);

    // Same page, neighbouring address: page exists, line unwritten.
    EXPECT_EQ(store.find(301), nullptr);
    EXPECT_FALSE(store.isWritten(301));

    // Rewrites don't bump the distinct-address count.
    store.refForWrite(300) = stampedLine(8);
    EXPECT_EQ(store.writtenCount(), 1u);
    EXPECT_EQ(store.find(300)->word64(0), 8u);
}

TEST(DenseLineStore, ZeroLineIsStillWritten)
{
    // A written all-zero line must stay distinguishable from an
    // unwritten one — the semantic the written-bitmap exists for.
    DenseLineStore store;
    store.refForWrite(10) = Line();
    ASSERT_NE(store.find(10), nullptr);
    EXPECT_TRUE(store.find(10)->isZero());
    EXPECT_TRUE(store.isWritten(10));
}

TEST(DenseLineStore, OverflowAboveDirectRange)
{
    DenseLineStore store;
    const LineAddr huge = DenseLineStore::kMaxDirectLines + 5;
    store.refForWrite(huge) = stampedLine(11);
    ASSERT_NE(store.find(huge), nullptr);
    EXPECT_EQ(store.find(huge)->word64(0), 11u);
    EXPECT_EQ(store.overflowSize(), 1u);
    EXPECT_EQ(store.writtenCount(), 1u);
}

TEST(DenseLineStore, ForEachWrittenAscending)
{
    DenseLineStore store;
    // Scattered across pages and bitmap words, inserted out of order.
    const std::vector<LineAddr> addrs = { 700, 3, 64, 65, 255, 256, 9001 };
    for (std::size_t i = 0; i < addrs.size(); ++i)
        store.refForWrite(addrs[i]) = stampedLine(i + 1);

    std::vector<LineAddr> seen;
    store.forEachWritten([&](LineAddr addr, const Line &line) {
        seen.push_back(addr);
        EXPECT_FALSE(line.isZero());
    });
    std::vector<LineAddr> expect = addrs;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(seen, expect);
}

TEST(DenseLineStore, PropertyAgainstMapOracle)
{
    DenseLineStore store;
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;
    Rng rng(0xd15ea5e);
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t addr = rng.nextBelow(4096);
        if (rng.chance(0.6)) {
            const std::uint64_t stamp = rng.next64();
            store.refForWrite(addr) = stampedLine(stamp);
            oracle[addr] = stamp;
        } else {
            const Line *line = store.find(addr);
            const auto it = oracle.find(addr);
            if (it == oracle.end()) {
                EXPECT_EQ(line, nullptr);
            } else {
                ASSERT_NE(line, nullptr);
                EXPECT_EQ(line->word64(0), it->second);
            }
        }
    }
    EXPECT_EQ(store.writtenCount(), oracle.size());
}

} // namespace
} // namespace dewrite
