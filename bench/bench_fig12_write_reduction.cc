/**
 * @file
 * Figure 12 — NVM write reduction achieved by DeWrite.
 *
 * For each application: the ground-truth duplicate fraction (the upper
 * bound), the fraction of write-backs DeWrite eliminated, and the gap
 * decomposition the paper reports — duplicates missed by PNA and by
 * reference saturation, and the extra NVM writes from metadata-cache
 * dirty evictions.
 *
 * Paper's shape: 54% mean reduction vs 58% mean duplication; ~1.5%
 * missed duplicates, ~2.6% extra metadata writes.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "obs/bench_report.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"
#include "trace/workload_stats.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 12: write reduction on secure NVMM\n\n");

    SystemConfig config;
    const std::vector<AppProfile> &apps = appCatalog();
    std::vector<WorkloadStats> truths(apps.size());
    std::vector<ExperimentResult> results(apps.size());
    RunnerProfile profile;
    parallelForProfiled(
        apps.size(),
        [&](std::size_t a) {
            SyntheticWorkload truth_trace(apps[a], appSeed(apps[a]));
            truths[a] = measureWorkload(truth_trace, experimentEvents());
            results[a] = runApp(apps[a], config,
                                dewriteScheme(DedupMode::Predicted));
        },
        profile);

    obs::BenchReport report("fig12_write_reduction", experimentEvents(),
                            runnerThreads());
    obs::JsonWriter &w = report.json();
    w.key("apps");
    w.beginArray();

    TablePrinter table({ "app", "dup truth", "eliminated", "missed",
                         "metadata wr", "net reduction" });
    double truth_sum = 0, elim_sum = 0, net_sum = 0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const WorkloadStats &truth = truths[a];
        const ExperimentResult &r = results[a];

        const double writes = static_cast<double>(r.run.writes);
        const double eliminated =
            static_cast<double>(r.run.writesEliminated) / writes;
        const double missed = (r.stats.get("missed_by_pna") +
                               r.stats.get("missed_by_saturation")) /
                              writes;
        // Metadata writebacks program one 128-bit block of a line
        // (direct re-encryption granularity), so they weigh 1/16 of a
        // full-line data write.
        const double metadata_line_equiv =
            r.stats.get("metadata_writebacks") *
            (static_cast<double>(kAesBlockSize * 8) / kLineBits);
        const double metadata_writes = metadata_line_equiv / writes;
        // Net line writes: data lines written plus metadata writeback
        // equivalents, versus one full line per write in the baseline.
        const double net =
            1.0 - (writes - r.run.writesEliminated +
                   metadata_line_equiv) /
                      writes;

        truth_sum += truth.dupFraction();
        elim_sum += eliminated;
        net_sum += net;
        table.addRow({ apps[a].name,
                       TablePrinter::percent(truth.dupFraction()),
                       TablePrinter::percent(eliminated),
                       TablePrinter::percent(missed),
                       TablePrinter::percent(metadata_writes),
                       TablePrinter::percent(net) });

        w.beginObject();
        w.field("app", apps[a].name);
        w.field("dup_truth", truth.dupFraction());
        w.field("eliminated", eliminated);
        w.field("missed", missed);
        w.field("metadata_writes", metadata_writes);
        w.field("net_reduction", net);
        w.endObject();
    }
    const double n = static_cast<double>(appCatalog().size());
    table.addRow({ "AVERAGE", TablePrinter::percent(truth_sum / n),
                   TablePrinter::percent(elim_sum / n), "-", "-",
                   TablePrinter::percent(net_sum / n) });
    table.print();

    w.endArray();
    w.field("mean_dup_truth", truth_sum / n);
    w.field("mean_eliminated", elim_sum / n);
    w.field("mean_net_reduction", net_sum / n);
    w.key("profile");
    profile.writeJson(w);

    std::printf("\npaper: 54%% mean reduction vs 58%% duplication; "
                "~1.5%% missed, ~2.6%% metadata writes\n");
    if (!report.close()) {
        std::fprintf(stderr, "failed writing %s\n",
                     report.path().c_str());
        return 1;
    }
    return 0;
}
