/**
 * @file
 * Streaming JSON writer with correct string escaping.
 *
 * Every bench and exporter used to hand-roll fprintf JSON, which broke
 * the moment a scheme name contained a quote and silently ignored
 * write errors. JsonWriter centralizes both concerns: it tracks the
 * container nesting (commas and indentation are automatic), escapes
 * every string it emits, and latches stream errors so callers can turn
 * a failed write into a non-zero exit code instead of a truncated file.
 *
 * The writer targets either a FILE* or an in-memory std::string (for
 * tests and for building sub-documents). It is deliberately
 * append-only — no DOM, no allocation proportional to the document —
 * so exporters can stream arbitrarily long traces.
 */

#ifndef DEWRITE_OBS_JSON_WRITER_HH
#define DEWRITE_OBS_JSON_WRITER_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace dewrite::obs {

/** Returns @p text with JSON string escaping applied (no quotes added). */
std::string jsonEscape(std::string_view text);

class JsonWriter
{
  public:
    /** Streams to @p out; the caller keeps ownership of the FILE. */
    explicit JsonWriter(std::FILE *out, bool pretty = true);

    /** Appends to @p out (kept alive by the caller). */
    explicit JsonWriter(std::string *out, bool pretty = true);

    /** @{ Containers. Every begin must be matched before finishing. */
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    /** @} */

    /** Emits an object key; must be followed by a value or container. */
    void key(std::string_view name);

    /** @{ Scalar values (escaped / canonically formatted). */
    void value(std::string_view text);
    void value(const char *text) { value(std::string_view(text)); }
    void value(double number);
    void value(std::uint64_t number);
    void value(std::int64_t number);
    void value(int number) { value(static_cast<std::int64_t>(number)); }
    void value(unsigned number)
    {
        value(static_cast<std::uint64_t>(number));
    }
    void value(bool flag);
    void valueNull();
    /** @} */

    /** @{ key + value in one call. */
    template <typename T>
    void field(std::string_view name, T v)
    {
        key(name);
        value(v);
    }
    /** @} */

    /**
     * True while no stream error has been observed and the document is
     * structurally sound (balanced when all containers are closed).
     */
    bool ok() const;

    /** Depth of currently open containers. */
    std::size_t depth() const { return stack_.size(); }

  private:
    enum class Frame : std::uint8_t { Object, Array };

    void raw(std::string_view text);
    void separate(bool is_key_or_element);
    void newlineIndent();

    std::FILE *file_ = nullptr;
    std::string *sink_ = nullptr;
    bool pretty_;
    bool failed_ = false;
    bool keyPending_ = false;
    std::vector<std::pair<Frame, std::size_t>> stack_;
};

} // namespace dewrite::obs

#endif // DEWRITE_OBS_JSON_WRITER_HH
