#!/usr/bin/env python3
"""clang-tidy wall driver.

Runs clang-tidy (configured by the repo-root ``.clang-tidy``) over every
translation unit listed in ``compile_commands.json`` and gates the result
against a checked-in baseline (``tools/clang_tidy_baseline.json``).

The gate is *ratchet-only*: a finding is fatal unless the baseline
already records at least as many findings of that check in that file.
Fixing findings and shrinking the baseline is always safe; introducing a
new finding fails the run.  Regenerate the baseline after legitimate
fixes with ``--update-baseline``.

When clang-tidy is not installed the driver prints a notice and exits 0
so local workflows on minimal containers keep working; CI passes
``--require`` to turn a missing binary into a hard failure.

Exit codes:
  0  clean (or tool skipped because clang-tidy is absent)
  1  new findings over the baseline, or a TU failed to parse
  2  usage / environment error (bad build dir, missing compile DB)
  3  clang-tidy binary required (--require) but not found
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "tools",
                                "clang_tidy_baseline.json")

#: Directories (repo-relative) whose TUs are subject to the wall.
SOURCE_DIRS = ("src", "tests", "bench", "examples")

#: Candidate binary names, newest first.
CLANG_TIDY_CANDIDATES = ("clang-tidy",) + tuple(
    f"clang-tidy-{v}" for v in range(21, 13, -1))

#: ``file:line:col: warning: message [check-a,check-b]``
DIAG_RE = re.compile(
    r"^(?P<file>/[^:]+|[A-Za-z]:[^:]+|[^:\s][^:]*):"
    r"(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<severity>warning|error):\s+"
    r"(?P<message>.*?)\s+"
    r"\[(?P<checks>[A-Za-z0-9.,_-]+)\]$")


def find_clang_tidy(explicit: str | None) -> str | None:
    """Resolve the clang-tidy binary, or None if unavailable."""
    if explicit:
        return explicit if shutil.which(explicit) else None
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    for name in CLANG_TIDY_CANDIDATES:
        if shutil.which(name):
            return name
    return None


def load_compile_db(build_dir: str) -> list[dict]:
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        raise SystemExit(
            f"error: {path} not found; configure with "
            "'cmake -B build -S .' first "
            "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def repo_relative(path: str, directory: str) -> str | None:
    """Repo-relative path for ``path``, or None if outside the repo."""
    absolute = os.path.normpath(
        path if os.path.isabs(path) else os.path.join(directory, path))
    try:
        relative = os.path.relpath(absolute, REPO_ROOT)
    except ValueError:  # different drive on Windows
        return None
    if relative.startswith(".."):
        return None
    return relative.replace(os.sep, "/")


def select_entries(db: list[dict],
                   only: list[str] | None) -> list[tuple[str, str]]:
    """(absolute file, repo-relative file) pairs subject to the wall.

    Third-party TUs (e.g. FetchContent'd googletest under the build
    tree) live outside SOURCE_DIRS and are skipped.
    """
    selected = []
    seen = set()
    for entry in db:
        rel = repo_relative(entry["file"], entry.get("directory", "."))
        if rel is None or rel in seen:
            continue
        if not rel.split("/", 1)[0] in SOURCE_DIRS:
            continue
        if only and not any(rel == o or rel.startswith(o.rstrip("/") + "/")
                            for o in only):
            continue
        seen.add(rel)
        selected.append((os.path.join(REPO_ROOT, rel), rel))
    selected.sort(key=lambda pair: pair[1])
    return selected


def parse_diagnostics(output: str) -> list[tuple[str, int, str, str]]:
    """Parse clang-tidy stdout into (file, line, check, message) rows.

    A diagnostic tagged with several checks ([a,b]) yields one row per
    check.  Notes and code snippets are ignored.
    """
    rows = []
    for line in output.splitlines():
        match = DIAG_RE.match(line)
        if not match:
            continue
        rel = repo_relative(match.group("file"), REPO_ROOT)
        if rel is None:
            continue  # system/third-party header
        for check in match.group("checks").split(","):
            rows.append((rel, int(match.group("line")), check,
                         match.group("message")))
    return rows


def count_findings(
        rows: list[tuple[str, int, str, str]]) -> dict[str, dict[str, int]]:
    counts: dict[str, dict[str, int]] = {}
    for rel, _line, check, _message in rows:
        counts.setdefault(rel, {})[check] = \
            counts.get(rel, {}).get(check, 0) + 1
    return counts


def load_baseline(path: str) -> dict[str, dict[str, int]]:
    if not os.path.isfile(path):
        return {}
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    return data.get("findings", {})


def write_baseline(path: str,
                   counts: dict[str, dict[str, int]]) -> None:
    payload = {
        "comment": "clang-tidy ratchet baseline; regenerate with "
                   "tools/run_clang_tidy.py --update-baseline. Entries "
                   "may only shrink — new findings must be fixed or "
                   "NOLINT'd with a reason.",
        "findings": {
            rel: dict(sorted(checks.items()))
            for rel, checks in sorted(counts.items())
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def diff_against_baseline(
        counts: dict[str, dict[str, int]],
        baseline: dict[str, dict[str, int]]
) -> list[tuple[str, str, int, int]]:
    """(file, check, found, allowed) rows where found > allowed."""
    regressions = []
    for rel in sorted(counts):
        for check in sorted(counts[rel]):
            found = counts[rel][check]
            allowed = baseline.get(rel, {}).get(check, 0)
            if found > allowed:
                regressions.append((rel, check, found, allowed))
    return regressions


def run_one(binary: str, build_dir: str, absolute: str,
            extra_args: list[str]) -> tuple[str, int, str]:
    cmd = [binary, "-p", build_dir, "--quiet", *extra_args, absolute]
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          check=False)
    return absolute, proc.returncode, proc.stdout + proc.stderr


def self_test() -> int:
    """Exercise the parser and ratchet logic on canned data."""
    canned = "\n".join([
        f"{REPO_ROOT}/src/dedup/hash_store.cc:41:9: warning: use nullptr"
        " [modernize-use-nullptr]",
        "    int *p = 0;",
        "             ^",
        f"{REPO_ROOT}/src/sim/system.cc:10:5: error: narrowing"
        " [bugprone-foo,performance-bar]",
        f"{REPO_ROOT}/src/sim/system.cc:99:1: warning: again"
        " [bugprone-foo]",
        "/usr/include/c++/12/vector:100:3: warning: outside repo"
        " [bugprone-ignored]",
        "note: this note line is not a finding",
    ])
    rows = parse_diagnostics(canned)
    expect_rows = [
        ("src/dedup/hash_store.cc", 41, "modernize-use-nullptr",
         "use nullptr"),
        ("src/sim/system.cc", 10, "bugprone-foo", "narrowing"),
        ("src/sim/system.cc", 10, "performance-bar", "narrowing"),
        ("src/sim/system.cc", 99, "bugprone-foo", "again"),
    ]
    assert rows == expect_rows, f"parser mismatch: {rows}"

    counts = count_findings(rows)
    assert counts["src/sim/system.cc"]["bugprone-foo"] == 2

    # A seeded regression must be caught ...
    baseline = {"src/sim/system.cc": {"bugprone-foo": 1}}
    regressions = diff_against_baseline(counts, baseline)
    assert ("src/sim/system.cc", "bugprone-foo", 2, 1) in regressions
    assert ("src/dedup/hash_store.cc", "modernize-use-nullptr", 1, 0) \
        in regressions
    # ... and a covering baseline must suppress everything.
    covering = {
        "src/dedup/hash_store.cc": {"modernize-use-nullptr": 1},
        "src/sim/system.cc": {"bugprone-foo": 2, "performance-bar": 1},
    }
    assert diff_against_baseline(counts, covering) == []

    print("run_clang_tidy self-test: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__.split("\n", 1)[1])
    parser.add_argument("paths", nargs="*",
                        help="restrict to these repo-relative files or "
                             "directories (default: all)")
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT,
                                                            "build"),
                        help="build tree holding compile_commands.json "
                             "(default: %(default)s)")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: $CLANG_TIDY "
                             "or the newest clang-tidy[-N] on PATH)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="ratchet baseline file "
                             "(default: %(default)s)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's "
                             "findings instead of gating")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 3) if clang-tidy is not "
                             "installed instead of skipping")
    parser.add_argument("--jobs", type=int,
                        default=os.cpu_count() or 1,
                        help="parallel clang-tidy processes "
                             "(default: %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in parser/ratchet self-test "
                             "and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    binary = find_clang_tidy(args.clang_tidy)
    if binary is None:
        if args.require:
            print("error: clang-tidy not found and --require given",
                  file=sys.stderr)
            return 3
        print("run_clang_tidy: clang-tidy not installed; skipping "
              "(install clang-tidy or pass --clang-tidy; CI uses "
              "--require)")
        return 0

    try:
        db = load_compile_db(args.build_dir)
    except SystemExit as err:
        print(err, file=sys.stderr)
        return 2

    entries = select_entries(db, args.paths or None)
    if not entries:
        print("error: no matching translation units in the compile "
              "database", file=sys.stderr)
        return 2

    print(f"run_clang_tidy: {binary} over {len(entries)} TUs "
          f"({args.jobs} jobs)")
    all_rows: list[tuple[str, int, str, str]] = []
    hard_failures = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(run_one, binary, args.build_dir,
                               absolute, [])
                   for absolute, _rel in entries]
        for future in concurrent.futures.as_completed(futures):
            absolute, returncode, output = future.result()
            rows = parse_diagnostics(output)
            all_rows.extend(rows)
            # clang-tidy exits non-zero for WarningsAsErrors findings
            # (handled by the ratchet) — but a run that produced no
            # parseable diagnostics yet failed means the TU itself
            # didn't compile under clang.
            if returncode != 0 and not rows:
                hard_failures.append((absolute, output.strip()))

    if hard_failures:
        for absolute, output in sorted(hard_failures):
            print(f"error: clang-tidy failed on {absolute}:\n{output}",
                  file=sys.stderr)
        return 1

    counts = count_findings(all_rows)
    if args.update_baseline:
        write_baseline(args.baseline, counts)
        total = sum(sum(c.values()) for c in counts.values())
        print(f"baseline updated: {total} findings in "
              f"{len(counts)} files -> {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    regressions = diff_against_baseline(counts, baseline)
    if regressions:
        print(f"\n{len(regressions)} finding(s) over the baseline:",
              file=sys.stderr)
        shown = {(rel, check) for rel, check, _f, _a in regressions}
        for rel, line, check, message in sorted(all_rows):
            if (rel, check) in shown:
                print(f"  {rel}:{line}: {message} [{check}]",
                      file=sys.stderr)
        print("\nFix the findings (preferred), NOLINT(check) with a "
              "reason, or run --update-baseline if they are accepted "
              "debt.", file=sys.stderr)
        return 1

    stale = [(rel, check)
             for rel, checks in baseline.items()
             for check in checks
             if counts.get(rel, {}).get(check, 0) < checks[check]]
    if stale:
        print(f"note: {len(stale)} baseline entries are stale (fixed); "
              "run --update-baseline to ratchet down")
    total = sum(sum(c.values()) for c in counts.values())
    print(f"clang-tidy wall clean: {total} findings, all within "
          "baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
