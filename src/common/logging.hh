/**
 * @file
 * gem5-style status and error reporting: panic/fatal/warn/inform.
 *
 * panic() flags simulator bugs (aborts); fatal() flags unusable user
 * configuration (exits cleanly with an error code); warn()/inform() print
 * and continue.
 */

#ifndef DEWRITE_COMMON_LOGGING_HH
#define DEWRITE_COMMON_LOGGING_HH

#include <cstdarg>

namespace dewrite {

/** Internal invariant violated — a DeWrite bug. Prints and aborts. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Unusable configuration or input — a user error. Prints and exits(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace dewrite

#endif // DEWRITE_COMMON_LOGGING_HH
