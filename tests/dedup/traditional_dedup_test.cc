/**
 * @file
 * The traditional cryptographic-fingerprint comparator (Table I):
 * DeWrite's engine configured with MD5/SHA-1, where matches are
 * trusted without a confirmation read.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "controller/dewrite_controller.hh"
#include "dedup/dedup_engine.hh"
#include "nvm/nvm_device.hh"
#include "sim/system.hh"

namespace dewrite {
namespace {

SystemConfig
cryptoConfig(unsigned digest_bits)
{
    SystemConfig config;
    config.memory.numLines = 1 << 16;
    config.memory.hashDigestBits = digest_bits;
    return config;
}

class TraditionalDedupTest : public ::testing::TestWithParam<HashFunction>
{
  protected:
    TraditionalDedupTest()
        : config_(cryptoConfig(hashSpec(GetParam()).digestBits)),
          device_(config_), cme_(defaultAesKey()),
          metadata_(config_, device_, config_.memory.numLines),
          engine_(config_, device_, metadata_, cme_,
                  DedupEngine::Options{ DetectPolicy::ConfirmRead, nullptr,
                                        4, GetParam() })
    {
    }

    SystemConfig config_;
    NvmDevice device_;
    CounterModeEngine cme_;
    MetadataCache metadata_;
    DedupEngine engine_;
};

TEST_P(TraditionalDedupTest, DetectsDuplicatesWithoutConfirmRead)
{
    Rng rng(161);
    const Line data = Line::random(rng);
    const DetectOutcome first = engine_.detect(data, 0, true);
    EXPECT_FALSE(first.duplicate);
    const WriteCommit commit =
        engine_.commitUnique(1, data, first.hash, first.done, first.done);

    const DetectOutcome second = engine_.detect(data, commit.done, true);
    EXPECT_TRUE(second.duplicate);
    EXPECT_EQ(second.confirmReads, 0u); // Digest is trusted.
    EXPECT_EQ(engine_.unsafeCorruptions(), 0u);
}

TEST_P(TraditionalDedupTest, DetectionLatencyIsDominatedByHashing)
{
    Rng rng(162);
    const Line data = Line::random(rng);
    const DetectOutcome warm = engine_.detect(data, 0, true);
    const DetectOutcome det = engine_.detect(data, warm.done, true);
    // Regardless of duplication, detection costs at least the
    // cryptographic hash — more than an NVM write (Table I's point).
    EXPECT_GE(det.done - warm.done, hashSpec(GetParam()).latency);
    EXPECT_GT(det.done - warm.done, config_.timing.nvmWrite);
}

TEST_P(TraditionalDedupTest, RoundTripStaysExact)
{
    Rng rng(163 + static_cast<int>(GetParam()));
    std::unordered_map<LineAddr, Line> reference;
    std::vector<Line> pool;
    Time now = 0;
    for (int op = 0; op < 150; ++op) {
        const LineAddr addr = rng.nextBelow(48);
        Line data;
        if (!pool.empty() && rng.chance(0.5)) {
            data = pool[rng.nextBelow(pool.size())];
        } else {
            data = Line::random(rng);
            pool.push_back(data);
        }
        const DetectOutcome det = engine_.detect(data, now, true);
        const WriteCommit commit = det.duplicate
            ? engine_.commitDuplicate(addr, det, det.done)
            : engine_.commitUnique(addr, data, det.hash, det.done,
                                   det.done);
        now = commit.done;
        reference[addr] = data;
    }
    for (const auto &[addr, expected] : reference) {
        const ReadOutcome out = engine_.read(addr, now);
        ASSERT_TRUE(out.valid);
        ASSERT_EQ(out.data, expected) << "addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(CryptoFunctions, TraditionalDedupTest,
                         ::testing::Values(HashFunction::Md5,
                                           HashFunction::Sha1),
                         [](const auto &param_info) {
                             return param_info.param == HashFunction::Md5
                                 ? "MD5"
                                 : "SHA1";
                         });

TEST(TraditionalDedupControllerTest, NameAndEndToEnd)
{
    SystemConfig config = cryptoConfig(128);
    NvmDevice device(config);
    DeWriteController::Options options;
    options.hashFunction = HashFunction::Md5;
    DeWriteController ctrl(config, device, defaultAesKey(), options);
    EXPECT_EQ(ctrl.name(), "dewrite-predicted+MD5");

    Rng rng(164);
    const Line data = Line::random(rng);
    ctrl.write(1, data, 0);
    const CtrlWriteResult dup = ctrl.write(2, data, 0);
    EXPECT_TRUE(dup.eliminated);
    EXPECT_EQ(ctrl.read(2, 0).data, data);
}

TEST(TraditionalDedupControllerTest, SlowerWritesThanCrc)
{
    // The end-to-end cost comparison behind Table I: cryptographic
    // fingerprints put >300 ns on every write's critical path.
    SystemConfig config = cryptoConfig(128);

    NvmDevice device_crc(config);
    DeWriteController crc(config, device_crc, defaultAesKey(), {});
    NvmDevice device_md5(config);
    DeWriteController::Options options;
    options.hashFunction = HashFunction::Md5;
    DeWriteController md5ctrl(config, device_md5, defaultAesKey(),
                              options);

    Rng rng(165);
    Time crc_total = 0, md5_total = 0;
    for (int i = 0; i < 50; ++i) {
        Line data;
        data.setWord64(0, rng.next64());
        data.setWord64(1, i + 1);
        crc_total += crc.write(i, data, i * 10000000).latency;
        md5_total += md5ctrl.write(i, data, i * 10000000).latency;
    }
    EXPECT_GT(md5_total, crc_total);
}

} // namespace
} // namespace dewrite
