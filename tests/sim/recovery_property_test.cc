/**
 * @file
 * Property test: crash-and-recover at arbitrary points during random
 * workloads, then keep operating — data integrity and structural
 * invariants must hold throughout.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hh"
#include "dedup/dedup_engine.hh"
#include "dedup/recovery.hh"
#include "nvm/nvm_device.hh"
#include "sim/system.hh"

namespace dewrite {
namespace {

class CrashRecoveryProperty : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    CrashRecoveryProperty()
        : device_(config()), cme_(defaultAesKey()),
          metadata_(config(), device_, config().memory.numLines),
          engine_(config(), device_, metadata_, cme_)
    {
    }

    static const SystemConfig &
    config()
    {
        static SystemConfig instance = [] {
            SystemConfig c;
            c.memory.numLines = 1 << 14;
            return c;
        }();
        return instance;
    }

    void
    writeLine(LineAddr addr, const Line &data)
    {
        const DetectOutcome det = engine_.detect(data, now_, true);
        const WriteCommit commit = det.duplicate
            ? engine_.commitDuplicate(addr, det, det.done)
            : engine_.commitUnique(addr, data, det.hash, det.done,
                                   det.done);
        now_ = commit.done;
        ++writesDone_;
    }

    void
    randomOps(Rng &rng, int count,
              std::unordered_map<LineAddr, Line> &reference,
              std::vector<Line> &pool)
    {
        for (int op = 0; op < count; ++op) {
            const LineAddr addr = rng.nextBelow(80);
            Line data;
            const double pick = rng.nextDouble();
            if (!pool.empty() && pick < 0.45) {
                data = pool[rng.nextBelow(pool.size())];
            } else if (pick < 0.55) {
                data = Line();
            } else {
                data = Line::random(rng);
                pool.push_back(data);
            }
            writeLine(addr, data);
            reference[addr] = data;
        }
    }

    void
    verifyAll(const std::unordered_map<LineAddr, Line> &reference)
    {
        for (const auto &[addr, expected] : reference) {
            const ReadOutcome out = engine_.read(addr, now_);
            ASSERT_TRUE(out.valid) << "addr " << addr;
            ASSERT_EQ(out.data, expected) << "addr " << addr;
        }
    }

    NvmDevice device_;
    CounterModeEngine cme_;
    MetadataCache metadata_;
    DedupEngine engine_;
    Time now_ = 0;
    int writesDone_ = 0;
};

TEST_P(CrashRecoveryProperty, SurvivesRepeatedCrashes)
{
    Rng rng(GetParam());
    std::unordered_map<LineAddr, Line> reference;
    std::vector<Line> pool;
    RecoveryManager recovery(engine_);

    for (int round = 0; round < 4; ++round) {
        // A burst of random activity, a crash at an arbitrary point,
        // recovery, full verification — then the next round continues
        // on the recovered state.
        randomOps(rng, 100 + static_cast<int>(rng.nextBelow(150)),
                  reference, pool);
        recovery.simulateCrashDamage();
        recovery.rebuild();

        const AuditReport audit = recovery.audit();
        ASSERT_TRUE(audit.consistent())
            << "round " << round << ": missing="
            << audit.missingHashRecords
            << " stray=" << audit.strayHashRecords
            << " refs=" << audit.wrongReferences
            << " fsm=" << audit.fsmMismatches;
        verifyAll(reference);
    }
    // The recovered engine keeps deduplicating.
    const std::uint64_t dups_before = engine_.duplicateCommits();
    if (!pool.empty()) {
        writeLine(1000, pool.front());
        writeLine(1001, pool.front());
        EXPECT_GT(engine_.duplicateCommits(), dups_before);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryProperty,
                         ::testing::Values(301, 302, 303, 304));

} // namespace
} // namespace dewrite
