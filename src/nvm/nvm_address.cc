/**
 * @file
 * Address decoder implementation.
 */

#include "nvm/nvm_address.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dewrite {

AddressDecoder::AddressDecoder(unsigned num_banks, unsigned lines_per_row,
                               InterleavePolicy policy)
    : numBanks_(num_banks), linesPerRow_(std::max(1u, lines_per_row)),
      policy_(policy), bankDiv_(std::max(1u, num_banks)),
      rowDiv_(linesPerRow_)
{
    if (num_banks == 0)
        fatal("address decoder needs at least one bank");
}

AddressDecoder::AddressDecoder(unsigned num_banks)
    : AddressDecoder(num_banks, 8, InterleavePolicy::Line)
{
}

DecodedAddr
AddressDecoder::decode(LineAddr addr) const
{
    switch (policy_) {
      case InterleavePolicy::Line:
        return { static_cast<unsigned>(bankDiv_.mod(addr)),
                 bankDiv_.div(addr) };
      case InterleavePolicy::Row: {
        const std::uint64_t row_group = rowDiv_.div(addr);
        return { static_cast<unsigned>(bankDiv_.mod(row_group)),
                 // Row index within the bank; lines of one group share
                 // it, so they share the row buffer.
                 bankDiv_.div(row_group) * linesPerRow_ +
                     rowDiv_.mod(addr) };
      }
    }
    panic("bad interleave policy");
}

} // namespace dewrite
