/**
 * @file
 * Detection-policy ablation (DESIGN.md §5j): the paper's confirm-read
 * scheme against the unsafe weak-only ablation, the two-tier
 * weak+strong fingerprint scheme, and the adaptive per-epoch
 * controller, across the full 20-application catalog.
 *
 * For each policy the sweep reports detection latency, confirmation
 * reads paid and avoided, strong-fingerprint activity, write
 * reduction, bit flips, and host events/sec. Results go to stdout and
 * to BENCH_detection.json (schema v2) with one *detection parity
 * fingerprint* per policy — a CRC-32 over the per-app decision-level
 * signatures (detectionSignature). On collision-free traces every
 * confirming policy resolves the same candidates to the same verdicts,
 * so the weak+strong and adaptive fingerprints must equal the
 * confirm-read one byte-for-byte; the bench exits non-zero when they
 * do not, or when a confirming policy fails to reduce confirmation
 * reads.
 *
 * Two knobs make the parity pin well-defined. PNA is disabled:
 * prediction-gated NVM queries make authoritativeness depend on
 * metadata-cache contents, which the policies legitimately warm
 * differently — with PNA on, the pin would compare cache luck instead
 * of detection logic. And the cells run on a single core: the CPU
 * model issues the globally earliest event across cores, so with
 * multiple cores a faster detection path reorders the interleaved
 * trace streams and changes which writes even occur. One core fixes
 * the event order, leaving content as the only input to every verdict.
 *
 * Events per cell come from DEWRITE_EVENTS (default 120000); pass
 * --quick for a 20x shorter run with the same shape.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32.hh"
#include "common/table_printer.hh"
#include "obs/bench_report.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

namespace {

/**
 * Adaptive epoch length used by the sweep: short enough that even a
 * --quick cell (6k events) rolls several epochs, long enough for a
 * meaningful duplicate-ratio estimate.
 */
constexpr std::uint64_t kEpochWrites = 512;

constexpr DetectPolicy kPolicies[] = {
    DetectPolicy::ConfirmRead,
    DetectPolicy::WeakOnly,
    DetectPolicy::WeakStrong,
    DetectPolicy::Adaptive,
};

/** Aggregates of one policy's 20-app sweep. */
struct PolicyRun
{
    const char *name = nullptr;
    std::size_t cells = 0;
    std::uint64_t events = 0;
    double seconds = 0.0;
    RunnerProfile profile;

    std::uint64_t writes = 0;
    std::uint64_t writesEliminated = 0;
    std::uint64_t bitsProgrammed = 0;
    double detects = 0.0;
    double detectPs = 0.0;
    double confirmReads = 0.0;
    double confirmReadsAvoided = 0.0;
    double strongFpComputes = 0.0;
    double strongFpHits = 0.0;
    double modeSwitches = 0.0;
    double unsafeCorruptions = 0.0;

    std::uint32_t fingerprint = 0; //!< CRC-32 over detection signatures.

    double eventsPerSec() const
    {
        return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
    }

    double avgDetectNs() const
    {
        return detects > 0 ? detectPs / detects / 1000.0 : 0.0;
    }

    double writeReduction() const
    {
        return writes > 0 ? static_cast<double>(writesEliminated) /
                static_cast<double>(writes)
                          : 0.0;
    }
};

double
metricValue(const ExperimentResult &cell, const char *path)
{
    for (const obs::MetricSample &sample : cell.metrics) {
        if (sample.path == path)
            return sample.value;
    }
    return 0.0;
}

PolicyRun
runPolicy(DetectPolicy policy, const std::vector<AppProfile> &apps,
          const SystemConfig &config, std::uint64_t events)
{
    SchemeOptions scheme = dewriteScheme(DedupMode::Predicted);
    scheme.dewrite.detect = policy;
    scheme.dewrite.detectEpochWrites = kEpochWrites;
    scheme.dewrite.pnaEnabled = false;

    PolicyRun run;
    run.name = detectPolicyName(policy);
    const auto cells = runMatrixProfiled(apps, { scheme }, config,
                                         run.profile, events, 0);
    run.seconds = run.profile.wallSeconds;
    run.cells = cells.size();

    std::string signatures;
    for (const ExperimentResult &cell : cells) {
        run.events += cell.run.events;
        run.writes += cell.run.writes;
        run.writesEliminated += cell.run.writesEliminated;
        run.bitsProgrammed += cell.run.bitsProgrammed;
        run.detects +=
            metricValue(cell, "controller.dedup.detect.detects");
        run.detectPs += metricValue(
            cell, "controller.dedup.detect.latency_ps_total");
        run.confirmReads +=
            metricValue(cell, "controller.dedup.detect.confirm_reads");
        run.confirmReadsAvoided += metricValue(
            cell, "controller.dedup.detect.confirm_reads_avoided");
        run.strongFpComputes += metricValue(
            cell, "controller.dedup.detect.strong_fp_computes");
        run.strongFpHits += metricValue(
            cell, "controller.dedup.detect.strong_fp_hits");
        run.modeSwitches +=
            metricValue(cell, "controller.dedup.detect.mode_switches");
        run.unsafeCorruptions += cell.stats.get("unsafe_corruptions");
        signatures += detectionSignature(cell);
    }
    run.fingerprint = crc32(
        reinterpret_cast<const std::uint8_t *>(signatures.data()),
        signatures.size());
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const std::uint64_t events =
        quick ? experimentEvents() / 20 : experimentEvents();

    SystemConfig config;
    // Single core: multi-core cells issue the globally earliest event,
    // so detection latency would reorder the trace interleaving and
    // the policies would no longer see the same write stream (see the
    // file comment). One core pins the event order.
    config.numCores = 1;
    const std::vector<AppProfile> &apps = appCatalog();

    std::printf("Detection-policy ablation: %zu apps x %zu policies, "
                "%llu events/cell (adaptive epoch %llu writes)\n\n",
                apps.size(), std::size(kPolicies),
                static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(kEpochWrites));

    std::vector<PolicyRun> runs;
    for (DetectPolicy policy : kPolicies)
        runs.push_back(runPolicy(policy, apps, config, events));

    TablePrinter table({ "policy", "detect (ns)", "confirm reads",
                         "avoided", "fp computes", "eliminated",
                         "bit flips", "events/sec" });
    for (const PolicyRun &r : runs) {
        table.addRow({ r.name, TablePrinter::num(r.avgDetectNs(), 1),
                       TablePrinter::num(r.confirmReads, 0),
                       TablePrinter::num(r.confirmReadsAvoided, 0),
                       TablePrinter::num(r.strongFpComputes, 0),
                       TablePrinter::percent(r.writeReduction()),
                       std::to_string(r.bitsProgrammed),
                       TablePrinter::num(r.eventsPerSec(), 0) });
    }
    table.print();

    // Parity: every confirming policy must produce decision-identical
    // results on these (collision-free) traces; weak-only is reported
    // but not pinned — trusting the CRC is exactly what it ablates.
    const PolicyRun &confirm = runs[0];
    const PolicyRun &weak_only = runs[1];
    const PolicyRun &strong = runs[2];
    const PolicyRun &adaptive = runs[3];
    const bool strong_parity = strong.fingerprint == confirm.fingerprint;
    const bool adaptive_parity =
        adaptive.fingerprint == confirm.fingerprint;
    // The perf claim itself: both two-tier policies must resolve some
    // confirmations by fingerprint instead of a read.
    const bool strong_reduces =
        strong.confirmReads < confirm.confirmReads &&
        strong.confirmReadsAvoided > 0;
    const bool adaptive_reduces =
        adaptive.confirmReads < confirm.confirmReads &&
        adaptive.confirmReadsAvoided > 0;

    std::printf("\nparity: weak-strong %s, adaptive %s; "
                "confirm reads %s/%s reduced\n",
                strong_parity ? "ok" : "MISMATCH",
                adaptive_parity ? "ok" : "MISMATCH",
                strong_reduces ? "ok" : "NOT",
                adaptive_reduces ? "ok" : "NOT");

    obs::BenchReport report("detection", events, runnerThreads());
    if (!report.opened())
        return 1;
    obs::JsonWriter &w = report.json();
    w.field("adaptive_epoch_writes", kEpochWrites);
    w.key("policies");
    w.beginArray();
    for (const PolicyRun &r : runs) {
        w.beginObject();
        w.field("policy", r.name);
        w.field("cells", static_cast<std::uint64_t>(r.cells));
        w.field("events", r.events);
        w.field("wall_seconds", r.seconds);
        w.field("events_per_sec", r.eventsPerSec());
        w.field("avg_detect_ns", r.avgDetectNs());
        w.field("confirm_reads", r.confirmReads);
        w.field("confirm_reads_avoided", r.confirmReadsAvoided);
        w.field("strong_fp_computes", r.strongFpComputes);
        w.field("strong_fp_hits", r.strongFpHits);
        w.field("mode_switches", r.modeSwitches);
        w.field("unsafe_corruptions", r.unsafeCorruptions);
        w.field("write_reduction", r.writeReduction());
        w.field("bits_programmed", r.bitsProgrammed);
        w.field("detection_fingerprint",
                static_cast<std::uint64_t>(r.fingerprint));
        w.key("profile");
        r.profile.writeJson(w);
        w.endObject();
    }
    w.endArray();

    w.key("parity");
    w.beginObject();
    w.field("reference", confirm.name);
    w.field("weak_strong_matches", strong_parity);
    w.field("adaptive_matches", adaptive_parity);
    w.field("weak_only_fingerprint",
            static_cast<std::uint64_t>(weak_only.fingerprint));
    w.endObject();

    if (!report.close()) {
        std::fprintf(stderr, "failed writing %s\n",
                     report.path().c_str());
        return 1;
    }
    std::printf("wrote %s\n", report.path().c_str());

    if (!strong_parity || !adaptive_parity) {
        std::fprintf(stderr, "detection parity fingerprints diverged\n");
        return 1;
    }
    if (!strong_reduces || !adaptive_reduces) {
        std::fprintf(stderr,
                     "two-tier policies failed to avoid confirmation "
                     "reads\n");
        return 1;
    }
    return 0;
}
