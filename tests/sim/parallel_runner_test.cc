/**
 * @file
 * Determinism and correctness tests for the parallel experiment
 * runner and its work-stealing thread pool.
 *
 * The load-bearing property: runMatrix must produce results
 * byte-identical to the equivalent serial runApp loop at *any* worker
 * count, because every published figure now flows through it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/parallel_runner.hh"
#include "sim/thread_pool.hh"
#include "trace/app_catalog.hh"

namespace dewrite {
namespace {

// --- ThreadPool ------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{ 0 };
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SingleWorkerStillDrains)
{
    ThreadPool pool(1);
    std::atomic<int> ran{ 0 };
    for (int i = 0; i < 10; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> ran{ 0 };
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    pool.submit([&] { ran.fetch_add(1); });
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    std::atomic<int> ran{ 0 };
    for (int i = 0; i < 8; ++i)
        pool.submit([&, i] {
            if (i == 3)
                throw std::runtime_error("task failed");
            ran.fetch_add(1);
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The pool stays usable after a failed batch.
    pool.submit([&] { ran.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
}

TEST(ThreadPoolTest, TasksSubmittedFromTasksRun)
{
    ThreadPool pool(2);
    std::atomic<int> ran{ 0 };
    pool.submit([&] {
        ran.fetch_add(1);
        pool.submit([&] { ran.fetch_add(1); });
    });
    pool.wait();
    EXPECT_EQ(ran.load(), 2);
}

// --- parallelFor -----------------------------------------------------

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce)
{
    for (unsigned threads : { 1u, 2u, 8u }) {
        std::vector<std::atomic<int>> visits(257);
        parallelFor(
            visits.size(),
            [&](std::size_t i) { visits[i].fetch_add(1); }, threads);
        for (std::size_t i = 0; i < visits.size(); ++i)
            EXPECT_EQ(visits[i].load(), 1)
                << "index " << i << " at " << threads << " threads";
    }
}

TEST(ParallelForTest, ZeroCountIsANoop)
{
    bool ran = false;
    parallelFor(0, [&](std::size_t) { ran = true; }, 4);
    EXPECT_FALSE(ran);
}

TEST(ParallelForTest, RethrowsBodyException)
{
    EXPECT_THROW(parallelFor(
                     8,
                     [&](std::size_t i) {
                         if (i == 5)
                             throw std::runtime_error("body failed");
                     },
                     4),
                 std::runtime_error);
}

// --- runMatrix determinism -------------------------------------------

void
expectIdentical(const ExperimentResult &serial,
                const ExperimentResult &parallel, unsigned threads)
{
    SCOPED_TRACE(serial.app + "/" + serial.scheme + " at " +
                 std::to_string(threads) + " threads");
    EXPECT_EQ(serial.app, parallel.app);
    EXPECT_EQ(serial.scheme, parallel.scheme);

    const RunResult &a = serial.run;
    const RunResult &b = parallel.run;
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writesEliminated, b.writesEliminated);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.avgWriteLatencyNs, b.avgWriteLatencyNs);
    EXPECT_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.nvmLineWrites, b.nvmLineWrites);
    EXPECT_EQ(a.nvmLineReads, b.nvmLineReads);
    EXPECT_EQ(a.bitsProgrammed, b.bitsProgrammed);

    // Every controller detail counter, not just the headline numbers.
    EXPECT_EQ(serial.stats.all(), parallel.stats.all());

    // And the full registry snapshot: every metric path, kind, and
    // value must be reproducible regardless of worker count.
    EXPECT_EQ(serial.metrics, parallel.metrics);
}

TEST(RunMatrixTest, MatchesSerialLoopAtEveryThreadCount)
{
    SystemConfig config;
    config.memory.numLines = 1 << 18;
    constexpr std::uint64_t kEvents = 4000;

    const std::vector<AppProfile> &catalog = appCatalog();
    const std::vector<AppProfile> apps(catalog.begin(),
                                       catalog.begin() + 4);
    const std::vector<SchemeOptions> schemes = {
        secureBaselineScheme(), dewriteScheme(DedupMode::Predicted)
    };

    // The reference: the serial loop runMatrix replaces.
    std::vector<ExperimentResult> serial;
    for (const AppProfile &app : apps)
        for (const SchemeOptions &scheme : schemes)
            serial.push_back(
                runApp(app, config, scheme, kEvents, appSeed(app)));

    for (unsigned threads : { 1u, 2u, 8u }) {
        const std::vector<ExperimentResult> cells =
            runMatrix(apps, schemes, config, kEvents, threads);
        ASSERT_EQ(cells.size(), serial.size());
        for (std::size_t i = 0; i < cells.size(); ++i)
            expectIdentical(serial[i], cells[i], threads);
    }
}

TEST(RunMatrixTest, RepeatedRunsAreIdentical)
{
    SystemConfig config;
    config.memory.numLines = 1 << 18;
    const std::vector<AppProfile> &catalog = appCatalog();
    const std::vector<AppProfile> apps(catalog.begin(),
                                       catalog.begin() + 2);
    const std::vector<SchemeOptions> schemes = {
        dewriteScheme(DedupMode::Predicted)
    };

    const auto first = runMatrix(apps, schemes, config, 3000, 8);
    const auto second = runMatrix(apps, schemes, config, 3000, 8);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectIdentical(first[i], second[i], 8);
}

// --- profiled fan-out ------------------------------------------------

TEST(ParallelForProfiledTest, RecordsEveryCellAndWorkerTime)
{
    for (unsigned threads : { 1u, 4u }) {
        RunnerProfile profile;
        std::vector<std::atomic<int>> visits(31);
        parallelForProfiled(
            visits.size(),
            [&](std::size_t i) { visits[i].fetch_add(1); }, profile,
            threads);

        for (std::size_t i = 0; i < visits.size(); ++i)
            EXPECT_EQ(visits[i].load(), 1);

        EXPECT_EQ(profile.threads, threads);
        ASSERT_EQ(profile.cells.size(), visits.size());
        ASSERT_EQ(profile.workerBusySeconds.size(), threads);
        double worker_total = 0.0;
        for (double busy : profile.workerBusySeconds)
            worker_total += busy;
        for (const CellProfile &cell : profile.cells) {
            EXPECT_GE(cell.wallSeconds, 0.0);
            EXPECT_GE(cell.queueSeconds, 0.0);
            EXPECT_GE(cell.worker, 0);
            EXPECT_LT(cell.worker, static_cast<int>(threads));
        }
        EXPECT_NEAR(worker_total, profile.busySeconds(), 1e-9);
        EXPECT_GE(profile.wallSeconds, 0.0);
        EXPECT_LE(profile.utilization(), 1.0);
        EXPECT_GE(profile.maxCellSeconds(), 0.0);
    }
}

TEST(ParallelForProfiledTest, ZeroCountLeavesEmptyProfile)
{
    RunnerProfile profile;
    profile.cells.resize(3); // Stale state must be cleared.
    parallelForProfiled(0, [](std::size_t) {}, profile, 4);
    EXPECT_TRUE(profile.cells.empty());
    EXPECT_EQ(profile.busySeconds(), 0.0);
    EXPECT_EQ(profile.utilization(), 0.0);
}

TEST(RunMatrixProfiledTest, ResultsMatchUnprofiledRun)
{
    SystemConfig config;
    config.memory.numLines = 1 << 18;
    const std::vector<AppProfile> &catalog = appCatalog();
    const std::vector<AppProfile> apps(catalog.begin(),
                                       catalog.begin() + 2);
    const std::vector<SchemeOptions> schemes = {
        dewriteScheme(DedupMode::Predicted)
    };

    const auto plain = runMatrix(apps, schemes, config, 3000, 4);
    RunnerProfile profile;
    const auto profiled =
        runMatrixProfiled(apps, schemes, config, profile, 3000, 4);
    ASSERT_EQ(plain.size(), profiled.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
        expectIdentical(plain[i], profiled[i], 4);
    EXPECT_EQ(profile.cells.size(), plain.size());
    for (const ExperimentResult &cell : profiled)
        EXPECT_GT(cell.hostSeconds, 0.0);
}

// --- DEWRITE_THREADS parsing -----------------------------------------

/** Scoped environment override (unset restores at destruction). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

TEST(RunnerThreadsTest, DefaultsToAtLeastOne)
{
    ::unsetenv("DEWRITE_THREADS");
    EXPECT_GE(runnerThreads(), 1u);
}

TEST(RunnerThreadsTest, HonorsValidOverride)
{
    ScopedEnv env("DEWRITE_THREADS", "3");
    EXPECT_EQ(runnerThreads(), 3u);
}

TEST(RunnerThreadsDeathTest, RejectsMalformedValue)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_THREADS", "four");
    EXPECT_EXIT(runnerThreads(), ::testing::ExitedWithCode(1),
                "DEWRITE_THREADS");
}

TEST(RunnerThreadsDeathTest, RejectsZero)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_THREADS", "0");
    EXPECT_EXIT(runnerThreads(), ::testing::ExitedWithCode(1),
                "DEWRITE_THREADS");
}

TEST(RunnerThreadsDeathTest, RejectsTrailingGarbage)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_THREADS", "4x");
    EXPECT_EXIT(runnerThreads(), ::testing::ExitedWithCode(1),
                "DEWRITE_THREADS");
}

TEST(RunnerThreadsDeathTest, RejectsAbsurdCount)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv env("DEWRITE_THREADS", "1000000");
    EXPECT_EXIT(runnerThreads(), ::testing::ExitedWithCode(1),
                "DEWRITE_THREADS");
}

} // namespace
} // namespace dewrite
