/**
 * @file
 * CoreModel implementation.
 */

#include "cpu/core_model.hh"

#include <algorithm>
#include <array>

#include "common/check.hh"
#include "common/env.hh"
#include "controller/mem_controller.hh"
#include "trace/trace.hh"

namespace dewrite {

std::size_t
writeBatchSize()
{
    // Re-read per call (it runs once per runMulti), which keeps the
    // knob testable with setenv — the env.hh no-latch contract.
    return static_cast<std::size_t>(
        envUint("DEWRITE_BATCH", 16, 1, kMaxWriteBatch));
}

RunResult
CoreModel::run(TraceSource &trace, MemController &controller,
               std::uint64_t max_events)
{
    std::vector<TraceSource *> traces{ &trace };
    return runMulti(traces, controller, max_events);
}

void
CoreModel::registerMetrics(obs::MetricRegistry::Scope scope) const
{
    former_.registerMetrics(scope.scope("batch"));
}

RunResult
CoreModel::runMulti(const std::vector<TraceSource *> &traces,
                    MemController &controller, std::uint64_t max_events)
{
    /**
     * One in-flight write completion. While the write sits in the
     * current unflushed batch its completion time is unknown and
     * @c batchSlot names its staging slot; flushing resolves it.
     */
    struct StoreEntry
    {
        Time complete = 0;
        std::int32_t batchSlot = -1; //!< -1: resolved.
    };

    struct CoreState
    {
        TraceSource *trace;
        Time now = 0;
        MemEvent pending;
        Time issueAt = 0; //!< now + pending compute phase.
        bool alive = false;
        std::vector<StoreEntry> storeQueue; //!< In-flight writes.
    };

    // The +1 cycle per event is the memory instruction's own issue
    // slot, so IPC can reach but not exceed one per core.
    std::vector<CoreState> cores(traces.size());
    for (std::size_t c = 0; c < traces.size(); ++c) {
        cores[c].trace = traces[c];
        cores[c].alive = traces[c]->next(cores[c].pending);
        cores[c].issueAt = timing_.cycles(cores[c].pending.instGap + 1);
    }

    // The batch former exploits a slack in the core model: a write's
    // controller latency feeds back into core scheduling only when the
    // store queue drains, so consecutive globally-selected writes can
    // be staged and handed to the controller as one writeBatch() —
    // which replays them in the exact serial order (strict-equivalence
    // contract) but overlaps the host-side work. Any read, a full
    // queue, or a full batch forces the flush first.
    former_.reset(writeBatchSize());
    std::array<CtrlWriteResult, kMaxWriteBatch> responses;

    RunResult result;

    const auto flush = [&](BatchFormer::FlushReason reason) {
        if (former_.flush(controller, responses.data(), reason) == 0)
            return;
        for (auto &core : cores) {
            for (auto &entry : core.storeQueue) {
                if (entry.batchSlot >= 0) {
                    if (responses[entry.batchSlot].eliminated)
                        ++result.writesEliminated;
                    entry.complete = former_.slotNow(entry.batchSlot) +
                                     responses[entry.batchSlot].latency;
                    entry.batchSlot = -1;
                }
            }
        }
    };

    for (std::uint64_t issued = 0; issued < max_events; ++issued) {
        // Issue the globally earliest pending event.
        CoreState *core = nullptr;
        for (auto &candidate : cores) {
            if (candidate.alive &&
                (!core || candidate.issueAt < core->issueAt)) {
                core = &candidate;
            }
        }
        if (!core)
            break; // All traces exhausted.

        core->now = core->issueAt;
        result.instructions += core->pending.instGap + 1;
        ++result.events;

        if (core->pending.isWrite) {
            // Stage the write; its completion resolves at flush. The
            // write drains from the persist queue; the core stalls
            // only when the queue is at capacity (ordering is kept by
            // queue FIFO order plus per-bank serialization).
            const std::size_t slot = former_.stage(
                core->pending.addr, core->pending.data, core->now);
            core->storeQueue.push_back(
                { 0, static_cast<std::int32_t>(slot) });
            ++result.writes;

            const unsigned depth = std::max(1u, timing_.storeQueueDepth);
            if (former_.full()) {
                flush(BatchFormer::FlushReason::BatchFull);
            } else if (core->storeQueue.size() >= depth) {
                flush(BatchFormer::FlushReason::QueueFull);
            }
            while (core->storeQueue.size() >= depth) {
                core->now =
                    std::max(core->now, core->storeQueue.front().complete);
                core->storeQueue.erase(core->storeQueue.begin());
            }
        } else {
            // The controller must observe every staged write first.
            flush(BatchFormer::FlushReason::Read);
            // The core consumes only the latency, so readTiming lets
            // the scheme skip materializing the decrypted line.
            const CtrlReadResult read =
                controller.readTiming(core->pending.addr, core->now);
            // Loads block the in-order core until the data returns;
            // persist ordering constrains stores only, so the queue
            // keeps draining underneath.
            core->now += read.latency;
            ++result.reads;
        }

        core->alive = core->trace->next(core->pending);
        core->issueAt =
            core->now + timing_.cycles(core->pending.instGap + 1);
    }
    flush(BatchFormer::FlushReason::TraceEnd);

    Time slowest = 0;
    for (const auto &core : cores)
        slowest = std::max(slowest, core.now);
    result.cycles = slowest / timing_.cyclePeriod;
    result.ipc = result.cycles
        ? static_cast<double>(result.instructions) / result.cycles
        : 0.0;
    result.avgWriteLatencyNs =
        controller.avgWriteLatency() / kNanoSecond;
    result.avgReadLatencyNs = controller.avgReadLatency() / kNanoSecond;
    return result;
}

} // namespace dewrite
