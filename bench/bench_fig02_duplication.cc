/**
 * @file
 * Figure 2 — the percentage of duplicate lines written to memory.
 *
 * For each of the 20 applications, replays the write-back stream
 * against a reference memory image and reports the fraction of writes
 * whose content already exists in memory, split into zero lines and
 * non-zero duplicates.
 *
 * Paper's shape: duplicates range 18.6% (vips) to 98.4% (cactusADM)
 * with a 58% mean; zero lines average ~16% and dominate only sjeng.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"
#include "trace/workload_stats.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 2: duplicate lines written to NVMM\n\n");

    const std::vector<AppProfile> &apps = appCatalog();
    std::vector<WorkloadStats> stats(apps.size());
    parallelFor(apps.size(), [&](std::size_t a) {
        SyntheticWorkload trace(apps[a], appSeed(apps[a]));
        stats[a] = measureWorkload(trace, experimentEvents());
    });

    TablePrinter table({ "app", "suite", "dup lines", "zero lines",
                         "non-zero dup" });
    double dup_sum = 0.0;
    double zero_sum = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        dup_sum += stats[a].dupFraction();
        zero_sum += stats[a].zeroFraction();
        table.addRow({ apps[a].name, apps[a].suite,
                       TablePrinter::percent(stats[a].dupFraction()),
                       TablePrinter::percent(stats[a].zeroFraction()),
                       TablePrinter::percent(stats[a].dupFraction() -
                                             stats[a].zeroFraction()) });
    }
    const double n = static_cast<double>(appCatalog().size());
    table.addRow({ "AVERAGE", "-", TablePrinter::percent(dup_sum / n),
                   TablePrinter::percent(zero_sum / n),
                   TablePrinter::percent((dup_sum - zero_sum) / n) });
    table.print();

    std::printf("\npaper: dup 18.6%%..98.4%%, mean 58%%; "
                "zero mean ~16%%, sjeng zero-dominated\n");
    return 0;
}
