/**
 * @file
 * Experiment harness implementation.
 */

#include "sim/experiment.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "common/crc32.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "dedup/dedup_engine.hh"
#include "dedup/metadata_auditor.hh"
#include "obs/stage_profile.hh"
#include "obs/telemetry.hh"

namespace dewrite {

namespace {

DetailedExperiment runAppImpl(const AppProfile &profile,
                              const SystemConfig &config,
                              const SchemeOptions &scheme,
                              std::uint64_t max_events,
                              std::uint64_t seed,
                              const obs::TraceConfig *trace);

} // namespace

std::uint64_t
appSeed(const AppProfile &profile)
{
    // Stable across runs and platforms: derived from the name only.
    return 0x5eed0000ULL +
           crc32(reinterpret_cast<const std::uint8_t *>(
                     profile.name.data()),
                 profile.name.size());
}

std::string
resultSignature(const ExperimentResult &cell)
{
    std::string sig;
    char buf[128];
    auto addU64 = [&](const char *name, std::uint64_t v) {
        std::snprintf(buf, sizeof buf, "%s=%" PRIu64 ";", name, v);
        sig += buf;
    };
    auto addF64 = [&](const char *name, double v) {
        std::snprintf(buf, sizeof buf, "%s=%.17g;", name, v);
        sig += buf;
    };

    sig += cell.app + "/" + cell.scheme + ";";
    const RunResult &r = cell.run;
    addU64("instructions", r.instructions);
    addU64("cycles", r.cycles);
    addU64("events", r.events);
    addU64("writes", r.writes);
    addU64("reads", r.reads);
    addU64("writesEliminated", r.writesEliminated);
    addF64("ipc", r.ipc);
    addF64("avgWriteLatencyNs", r.avgWriteLatencyNs);
    addF64("avgReadLatencyNs", r.avgReadLatencyNs);
    addU64("totalEnergy", r.totalEnergy);
    addU64("nvmLineWrites", r.nvmLineWrites);
    addU64("nvmLineReads", r.nvmLineReads);
    addU64("bitsProgrammed", r.bitsProgrammed);
    for (const auto &[name, value] : cell.stats.all())
        addF64(name.c_str(), value);
    return sig;
}

std::uint32_t
resultFingerprint(const ExperimentResult &cell)
{
    const std::string sig = resultSignature(cell);
    return crc32(reinterpret_cast<const std::uint8_t *>(sig.data()),
                 sig.size());
}

std::string
detectionSignature(const ExperimentResult &cell)
{
    std::string sig;
    char buf[128];
    auto addU64 = [&](const char *name, std::uint64_t v) {
        std::snprintf(buf, sizeof buf, "%s=%" PRIu64 ";", name, v);
        sig += buf;
    };

    // The scheme name is deliberately absent: it embeds the detection
    // policy, and the whole point is comparing *across* policies.
    sig += cell.app + ";";
    const RunResult &r = cell.run;
    addU64("events", r.events);
    addU64("writes", r.writes);
    addU64("reads", r.reads);
    addU64("writesEliminated", r.writesEliminated);
    addU64("bitsProgrammed", r.bitsProgrammed);
    // Decision-level dedup counters only. Timing, energy, and raw NVM
    // line traffic are excluded on purpose: a policy that skips
    // confirmation reads touches fewer metadata blocks, so cache
    // evictions (and thus metadata write-backs) differ while every
    // dedup verdict is identical.
    for (const char *stat :
         { "duplicate_commits", "unique_commits", "silent_stores",
           "collision_mismatches", "missed_by_saturation",
           "missed_by_pna", "unsafe_corruptions" }) {
        addU64(stat,
               static_cast<std::uint64_t>(cell.stats.get(stat)));
    }
    return sig;
}

std::uint32_t
detectionFingerprint(const ExperimentResult &cell)
{
    const std::string sig = detectionSignature(cell);
    return crc32(reinterpret_cast<const std::uint8_t *>(sig.data()),
                 sig.size());
}

std::uint64_t
experimentEvents()
{
    // Every bench resolves its event budget here, so this is the
    // shared spot to validate the rest of the experiment environment:
    // a malformed DEWRITE_LOG, DEWRITE_AUDIT, DEWRITE_AUDIT_EPOCH,
    // DEWRITE_BATCH, DEWRITE_DETECT, DEWRITE_DETECT_EPOCH,
    // DEWRITE_STAGE_PROFILE, or DEWRITE_TELEMETRY_EVERY dies before any
    // cell runs (even when the value would never be read).
    logLevel();
    auditEnabled();
    auditEpochWrites();
    writeBatchSize();
    detectPolicyFromEnv();
    detectEpochFromEnv();
    obs::stageProfileEnabled();
    obs::TelemetryConfig::fromEnv();
    return envUint("DEWRITE_EVENTS", 120000, 1, kMaxExperimentEvents);
}

ExperimentResult
runApp(const AppProfile &profile, const SystemConfig &config,
       const SchemeOptions &scheme, std::uint64_t max_events,
       std::uint64_t seed)
{
    return runAppDetailed(profile, config, scheme, max_events, seed)
        .result;
}

ExperimentResult
runApp(const AppProfile &profile, const SystemConfig &config,
       const SchemeOptions &scheme)
{
    return runApp(profile, config, scheme, experimentEvents(),
                  appSeed(profile));
}

DetailedExperiment
runAppDetailed(const AppProfile &profile, const SystemConfig &config,
               const SchemeOptions &scheme, std::uint64_t max_events,
               std::uint64_t seed)
{
    return runAppImpl(profile, config, scheme, max_events, seed,
                      nullptr);
}

DetailedExperiment
runAppTraced(const AppProfile &profile, const SystemConfig &config,
             const SchemeOptions &scheme, std::uint64_t max_events,
             std::uint64_t seed, const obs::TraceConfig &trace)
{
    return runAppImpl(profile, config, scheme, max_events, seed,
                      &trace);
}

namespace {

DetailedExperiment
runAppImpl(const AppProfile &profile, const SystemConfig &config,
           const SchemeOptions &scheme, std::uint64_t max_events,
           std::uint64_t seed, const obs::TraceConfig *trace)
{
    DetailedExperiment detailed;
    detailed.result.app = profile.name;

    // One workload instance per core (a multi-programmed run of the
    // application), sharing the program-phase state and split across
    // disjoint address ranges.
    auto phase = std::make_shared<SharedPhase>();
    std::vector<std::unique_ptr<SyntheticWorkload>> workloads;
    std::vector<TraceSource *> traces;
    const unsigned cores = std::max(1u, config.numCores);
    for (unsigned core = 0; core < cores; ++core) {
        workloads.push_back(std::make_unique<SyntheticWorkload>(
            profile, seed + core,
            static_cast<LineAddr>(core) * profile.workingSetLines * 2,
            phase));
        traces.push_back(workloads.back().get());
    }

    // Derive the table sizing hint from what this run can actually
    // touch: the multi-programmed working set, capped by the event
    // budget (a run of N events writes at most N distinct lines).
    SystemConfig sized = config;
    if (sized.memory.workingSetHintLines == 0) {
        sized.memory.workingSetHintLines = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(cores) * profile.workingSetLines,
            std::max<std::uint64_t>(max_events, 1024));
    }

    detailed.system = std::make_unique<System>(sized, scheme);
    detailed.result.scheme = detailed.system->controller().name();
    if (trace)
        detailed.system->enableTracing(*trace);

    const auto host_start = std::chrono::steady_clock::now();
    detailed.result.run = detailed.system->run(traces, max_events);
    detailed.result.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();

    detailed.system->controller().fillStats(detailed.result.stats);
    detailed.result.metrics = detailed.system->registry().snapshot();
    return detailed;
}

} // namespace

SchemeOptions
plainScheme()
{
    SchemeOptions scheme;
    scheme.kind = SchemeKind::Plain;
    return scheme;
}

SchemeOptions
secureBaselineScheme()
{
    SchemeOptions scheme;
    scheme.kind = SchemeKind::SecureBaseline;
    return scheme;
}

SchemeOptions
dewriteScheme(DedupMode mode)
{
    SchemeOptions scheme;
    scheme.kind = SchemeKind::DeWrite;
    scheme.dewrite.mode = mode;
    return scheme;
}

} // namespace dewrite
