/**
 * @file
 * Registry exposure of the PR's host-side counters: the PadCache
 * hit/miss/prefill counters, the batch former's flush reasons, and the
 * service's merged per-shard snapshot. All of these are host-side
 * accounting — the suite also pins that none of them leak into the
 * legacy StatSet view that result signatures are built from.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "service/dedup_service.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"

namespace dewrite {
namespace {

double
sampleValue(const std::vector<obs::MetricSample> &samples,
            const std::string &path)
{
    const auto it = std::find_if(
        samples.begin(), samples.end(),
        [&](const obs::MetricSample &s) { return s.path == path; });
    EXPECT_NE(it, samples.end()) << "missing metric " << path;
    return it == samples.end() ? -1.0 : it->value;
}

DetailedExperiment
runSmall(const SchemeOptions &scheme)
{
    AppProfile profile = appCatalog()[0];
    profile.workingSetLines = 2048;
    SystemConfig config;
    config.memory.numLines = 32768;
    return runAppDetailed(profile, config, scheme, 20000,
                          appSeed(profile));
}

TEST(PipelineMetrics, DedupRunExposesPadCacheAndFlushReasons)
{
    const DetailedExperiment detailed =
        runSmall(dewriteScheme(DedupMode::Predicted));
    const std::vector<obs::MetricSample> samples =
        detailed.system->registry().snapshot();

    // PadCache effectiveness under the dedup engine's scope.
    const double hits =
        sampleValue(samples, "controller.dedup.pad_cache.hits");
    const double misses =
        sampleValue(samples, "controller.dedup.pad_cache.misses");
    sampleValue(samples, "controller.dedup.pad_cache.prefills");
    EXPECT_GT(hits + misses, 0.0);

    // Batch-former flush reasons under the core's scope. Every staged
    // write is a simulated write and vice versa.
    EXPECT_EQ(sampleValue(samples, "core.batch.writes_staged"),
              static_cast<double>(detailed.result.run.writes));
    const double flushes =
        sampleValue(samples, "core.batch.flush_read") +
        sampleValue(samples, "core.batch.flush_queue_full") +
        sampleValue(samples, "core.batch.flush_batch_full") +
        sampleValue(samples, "core.batch.flush_trace_end");
    EXPECT_GT(flushes, 0.0);
}

TEST(PipelineMetrics, SecureBaselineExposesItsPadCache)
{
    const DetailedExperiment detailed = runSmall(secureBaselineScheme());
    const std::vector<obs::MetricSample> samples =
        detailed.system->registry().snapshot();
    const double hits =
        sampleValue(samples, "controller.pad_cache.hits");
    const double misses =
        sampleValue(samples, "controller.pad_cache.misses");
    EXPECT_GT(hits + misses, 0.0);
}

TEST(PipelineMetrics, LatencyQuantilesShareOnePathAcrossSchemes)
{
    // The telemetry plane registers the histogram quantiles in the
    // MemController base class, so the dewrite controller and the
    // secure baseline expose the *same* metric paths — dashboards
    // compare schemes without per-scheme wiring.
    for (const SchemeOptions &scheme :
         { dewriteScheme(DedupMode::Predicted),
           secureBaselineScheme() }) {
        const DetailedExperiment detailed = runSmall(scheme);
        const std::vector<obs::MetricSample> samples =
            detailed.system->registry().snapshot();
        const double p50 =
            sampleValue(samples, "controller.write_latency.p50_ps");
        const double p99 =
            sampleValue(samples, "controller.write_latency.p99_ps");
        const double max =
            sampleValue(samples, "controller.write_latency.max_ps");
        sampleValue(samples, "controller.write_latency.p999_ps");
        sampleValue(samples, "controller.read_latency.p99_ps");
        EXPECT_GT(p50, 0.0) << detailed.result.scheme;
        EXPECT_LE(p50, p99) << detailed.result.scheme;
        EXPECT_LE(p99, max) << detailed.result.scheme;
        // And the histogram agrees with the exact accumulator mean's
        // order of magnitude: the mean must sit within [min, max].
        EXPECT_LE(sampleValue(samples,
                              "controller.write_latency_ps"),
                  max)
            << detailed.result.scheme;
    }
}

TEST(PipelineMetrics, HostCountersStayOutOfResultSignatures)
{
    // The new counters must never enter the legacy StatSet, which is
    // what resultSignature folds in — otherwise host-side accounting
    // would shift the golden fingerprints.
    const DetailedExperiment detailed =
        runSmall(dewriteScheme(DedupMode::Predicted));
    for (const auto &[name, value] : detailed.result.stats.all()) {
        EXPECT_EQ(name.find("pad_cache"), std::string::npos) << name;
        EXPECT_EQ(name.find("flush_"), std::string::npos) << name;
        EXPECT_EQ(name.find("writes_staged"), std::string::npos) << name;
    }
}

TEST(ServiceMetrics, MergedSnapshotCoversEveryShard)
{
    ServiceOptions options;
    options.shards = 4;
    options.threads = 2;
    options.tenants = 6;
    options.linesPerTenant = 1024;
    options.roundEvents = 1024;
    options.totalEvents = 8000;
    DedupService service(options);
    const ServiceResult result = service.run();

    const std::vector<obs::MetricSample> merged =
        service.registrySnapshot();
    EXPECT_TRUE(std::is_sorted(
        merged.begin(), merged.end(),
        [](const auto &a, const auto &b) { return a.path < b.path; }));

    EXPECT_GT(sampleValue(merged, "service.rounds"), 0.0);
    EXPECT_EQ(sampleValue(merged, "service.shards"), 4.0);
    for (std::size_t k = 0; k < 4; ++k) {
        const std::string shard = "shard" + std::to_string(k) + ".";
        // Routed-events gauge matches the run accounting.
        EXPECT_EQ(sampleValue(merged, shard + "ingest.events_routed"),
                  static_cast<double>(result.shards[k].events));
        // The ingest former did the staging for this shard...
        EXPECT_EQ(sampleValue(merged,
                              shard + "ingest.batch.writes_staged"),
                  static_cast<double>(result.shards[k].cell.run.writes));
        // ...while the shard System's own (undriven) core stayed idle.
        EXPECT_EQ(sampleValue(merged, shard + "core.batch.writes_staged"),
                  0.0);
        // And each shard's simulated components report under its
        // prefix.
        sampleValue(merged, shard + "system.sim_picoseconds");
        sampleValue(merged,
                    shard + "controller.dedup.pad_cache.misses");
    }
}

} // namespace
} // namespace dewrite
