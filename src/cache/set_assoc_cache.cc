/**
 * @file
 * SetAssocCache implementation.
 */

#include "cache/set_assoc_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dewrite {

namespace {

/** Mixes block keys so adjacent blocks do not all map to one set. */
std::uint64_t
mixKey(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return key;
}

} // namespace

SetAssocCache::SetAssocCache(std::size_t num_blocks, unsigned associativity)
    : numBlocks_(num_blocks), associativity_(associativity)
{
    if (associativity_ == 0)
        fatal("cache associativity must be nonzero");
    numSets_ = std::max<std::size_t>(1, num_blocks / associativity_);
    numBlocks_ = numSets_ * associativity_;
    ways_.resize(numSets_ * associativity_);
}

std::size_t
SetAssocCache::setIndex(std::uint64_t key) const
{
    return mixKey(key) % numSets_;
}

bool
SetAssocCache::access(std::uint64_t key, bool make_dirty)
{
    Way *base = ways_.data() + setIndex(key) * associativity_;
    for (unsigned w = 0; w < associativity_; ++w) {
        Way &way = base[w];
        if (way.valid && way.key == key) {
            way.lastUse = ++useClock_;
            way.dirty = way.dirty || make_dirty;
            hits_.increment();
            return true;
        }
    }
    misses_.increment();
    return false;
}

CacheEviction
SetAssocCache::insert(std::uint64_t key, bool dirty)
{
    Way *base = ways_.data() + setIndex(key) * associativity_;
    Way *victim = nullptr;
    for (unsigned w = 0; w < associativity_; ++w) {
        Way &way = base[w];
        if (way.valid && way.key == key)
            panic("inserting key %llu already resident",
                  static_cast<unsigned long long>(key));
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }

    CacheEviction eviction;
    if (victim->valid) {
        eviction.valid = true;
        eviction.key = victim->key;
        eviction.dirty = victim->dirty;
        if (victim->dirty)
            dirtyEvictions_.increment();
    }

    victim->valid = true;
    victim->dirty = dirty;
    victim->key = key;
    victim->lastUse = ++useClock_;
    return eviction;
}

bool
SetAssocCache::contains(std::uint64_t key) const
{
    const Way *base = ways_.data() + setIndex(key) * associativity_;
    for (unsigned w = 0; w < associativity_; ++w) {
        if (base[w].valid && base[w].key == key)
            return true;
    }
    return false;
}

CacheEviction
SetAssocCache::invalidate(std::uint64_t key)
{
    Way *base = ways_.data() + setIndex(key) * associativity_;
    for (unsigned w = 0; w < associativity_; ++w) {
        Way &way = base[w];
        if (way.valid && way.key == key) {
            CacheEviction eviction{ true, way.key, way.dirty };
            if (way.dirty)
                dirtyEvictions_.increment();
            way = Way();
            return eviction;
        }
    }
    return {};
}

double
SetAssocCache::hitRate() const
{
    const std::uint64_t total = hits_.value() + misses_.value();
    return total ? static_cast<double>(hits_.value()) / total : 0.0;
}

void
SetAssocCache::flush()
{
    std::fill(ways_.begin(), ways_.end(), Way());
}

std::vector<std::uint64_t>
SetAssocCache::dirtyKeys() const
{
    std::vector<std::uint64_t> keys;
    for (const auto &way : ways_) {
        if (way.valid && way.dirty)
            keys.push_back(way.key);
    }
    return keys;
}

void
SetAssocCache::cleanAll()
{
    for (auto &way : ways_)
        way.dirty = false;
}

} // namespace dewrite
