/**
 * @file
 * Parallel experiment runner implementation.
 */

#include "sim/parallel_runner.hh"

#include <cerrno>
#include <cstdlib>
#include <thread>

#include "common/logging.hh"
#include "sim/thread_pool.hh"

namespace dewrite {

unsigned
runnerThreads()
{
    if (const char *env = std::getenv("DEWRITE_THREADS")) {
        errno = 0;
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end == env || *end != '\0')
            fatal("DEWRITE_THREADS=\"%s\" is not a number", env);
        if (errno == ERANGE || parsed == 0 || parsed > 4096)
            fatal("DEWRITE_THREADS=\"%s\" out of range (1..4096)", env);
        return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
parallelFor(std::size_t count,
            const std::function<void(std::size_t)> &body,
            unsigned threads)
{
    if (count == 0)
        return;
    const unsigned workers = threads ? threads : runnerThreads();

    // One worker (or one task) degenerates to the plain serial loop —
    // same code path the determinism tests compare against.
    if (workers == 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    ThreadPool pool(workers);
    for (std::size_t i = 0; i < count; ++i)
        pool.submit([&body, i] { body(i); });
    pool.wait();
}

std::vector<ExperimentResult>
runMatrix(const std::vector<AppProfile> &apps,
          const std::vector<SchemeOptions> &schemes,
          const SystemConfig &config, std::uint64_t max_events,
          unsigned threads)
{
    const std::uint64_t events =
        max_events ? max_events : experimentEvents();
    std::vector<ExperimentResult> results(apps.size() * schemes.size());
    parallelFor(
        results.size(),
        [&](std::size_t cell) {
            const std::size_t a = cell / schemes.size();
            const std::size_t s = cell % schemes.size();
            results[cell] = runApp(apps[a], config, schemes[s], events,
                                   appSeed(apps[a]));
        },
        threads);
    return results;
}

} // namespace dewrite
