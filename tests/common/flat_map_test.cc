/**
 * @file
 * FlatMap / FlatSet unit and property tests.
 *
 * Beyond the basics, the suite targets exactly the failure modes of
 * open addressing with backward-shift deletion: erasing in the middle
 * of a probe chain, wrapping chains at the table boundary, and long
 * mixed histories checked against a std::unordered_map oracle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"

namespace dewrite {
namespace {

TEST(FlatMap, EmptyBehaviour)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_FALSE(map.contains(42));
    EXPECT_EQ(map.findIndex(42), (FlatMap<std::uint64_t, int>::npos));
    EXPECT_FALSE(map.erase(42));
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, int> map;
    auto [value, inserted] = map.tryEmplace(7, 70);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*value, 70);

    auto [again, reinserted] = map.tryEmplace(7, 700);
    EXPECT_FALSE(reinserted);
    EXPECT_EQ(*again, 70) << "tryEmplace must not overwrite";

    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 70);

    EXPECT_TRUE(map.erase(7));
    EXPECT_FALSE(map.erase(7));
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(7), nullptr);
}

TEST(FlatMap, BracketDefaultInserts)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    EXPECT_EQ(map[5], 0u);
    map[5] += 3;
    EXPECT_EQ(map[5], 3u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, GrowthAcrossRehashKeepsContents)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    constexpr std::uint64_t kCount = 10000;
    for (std::uint64_t i = 0; i < kCount; ++i)
        map[i * 977] = i;
    EXPECT_EQ(map.size(), kCount);
    for (std::uint64_t i = 0; i < kCount; ++i) {
        const std::uint64_t *v = map.find(i * 977);
        ASSERT_NE(v, nullptr) << "key " << i * 977;
        EXPECT_EQ(*v, i);
    }
}

TEST(FlatMap, ReserveAvoidsRehash)
{
    FlatMap<std::uint64_t, int> map;
    map.reserve(1000);
    const std::size_t cap = map.capacity();
    EXPECT_GE(cap * 7, 1000u * 10 / 2) << "load must stay <= 0.7";
    for (std::uint64_t i = 0; i < 1000; ++i)
        map[i] = 1;
    EXPECT_EQ(map.capacity(), cap) << "sized-for inserts must not rehash";
}

TEST(FlatMap, ClearKeepsCapacity)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t i = 0; i < 100; ++i)
        map[i] = 1;
    const std::size_t cap = map.capacity();
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.capacity(), cap);
    EXPECT_EQ(map.find(5), nullptr);
    map[5] = 2;
    EXPECT_EQ(*map.find(5), 2);
}

/** Forces every key into one probe chain to exercise backward shift. */
struct CollidingHash
{
    std::uint64_t operator()(std::uint64_t) const { return 0; }
};

TEST(FlatMap, BackshiftEraseCompactsChain)
{
    FlatMap<std::uint64_t, int, CollidingHash> map;
    // All keys collide: one chain of length 8 starting at slot 0.
    for (std::uint64_t i = 0; i < 8; ++i)
        map.tryEmplace(i, static_cast<int>(i));

    // Erase in the middle; every follower must stay findable.
    EXPECT_TRUE(map.erase(3));
    for (std::uint64_t i = 0; i < 8; ++i) {
        if (i == 3) {
            EXPECT_FALSE(map.contains(i));
        } else {
            ASSERT_NE(map.find(i), nullptr) << "lost key " << i;
            EXPECT_EQ(*map.find(i), static_cast<int>(i));
        }
    }

    // Erase the head, then the tail; chain stays intact throughout.
    EXPECT_TRUE(map.erase(0));
    EXPECT_TRUE(map.erase(7));
    for (std::uint64_t i : { 1ul, 2ul, 4ul, 5ul, 6ul })
        EXPECT_TRUE(map.contains(i)) << "lost key " << i;
    EXPECT_EQ(map.size(), 5u);
}

/** Pins chains near the top of the table so probes wrap past the end. */
struct WrappingHash
{
    std::uint64_t operator()(std::uint64_t key) const
    {
        // Capacity is at least 16; start every chain at slot 14 so a
        // handful of colliding keys wraps around the mask boundary.
        (void)key;
        return 14;
    }
};

TEST(FlatMap, BackshiftEraseAcrossWraparound)
{
    FlatMap<std::uint64_t, int, WrappingHash> map;
    for (std::uint64_t i = 0; i < 6; ++i)
        map.tryEmplace(i, static_cast<int>(i));
    ASSERT_EQ(map.capacity(), 16u);

    // The chain occupies slots 14, 15, 0, 1, 2, 3. Erasing the entry
    // at the boundary must shift the wrapped followers back.
    EXPECT_TRUE(map.erase(1)); // Lives at slot 15.
    for (std::uint64_t i : { 0ul, 2ul, 3ul, 4ul, 5ul }) {
        ASSERT_NE(map.find(i), nullptr) << "lost key " << i;
        EXPECT_EQ(*map.find(i), static_cast<int>(i));
    }
}

TEST(FlatMap, EraseDuringIndexedProbe)
{
    // findIndex handles are valid until the next mutation; after an
    // eraseIndex, re-derived handles must still resolve correctly.
    FlatMap<std::uint64_t, int, CollidingHash> map;
    for (std::uint64_t i = 0; i < 5; ++i)
        map.tryEmplace(i, static_cast<int>(i * 10));

    const std::size_t idx = map.findIndex(2);
    ASSERT_NE(idx, (FlatMap<std::uint64_t, int, CollidingHash>::npos));
    EXPECT_EQ(map.keyAt(idx), 2u);
    EXPECT_EQ(map.valueAt(idx), 20);
    map.eraseIndex(idx);

    EXPECT_FALSE(map.contains(2));
    for (std::uint64_t i : { 0ul, 1ul, 3ul, 4ul }) {
        const std::size_t at = map.findIndex(i);
        ASSERT_NE(at, (FlatMap<std::uint64_t, int, CollidingHash>::npos));
        EXPECT_EQ(map.keyAt(at), i);
        EXPECT_EQ(map.valueAt(at), static_cast<int>(i * 10));
    }
}

TEST(FlatMap, ForEachSortedAscending)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t key : { 900ul, 3ul, 77ul, 500ul, 12ul })
        map[key] = static_cast<int>(key);
    std::vector<std::uint64_t> keys;
    map.forEachSorted([&](std::uint64_t key, int value) {
        keys.push_back(key);
        EXPECT_EQ(value, static_cast<int>(key));
    });
    const std::vector<std::uint64_t> expect = { 3, 12, 77, 500, 900 };
    EXPECT_EQ(keys, expect);
}

TEST(FlatMap, IterationOrderDeterministic)
{
    // The same operation history must produce the same slot order.
    auto build = [] {
        FlatMap<std::uint64_t, int> map;
        Rng rng(123);
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t key = rng.nextBelow(500);
            if (rng.chance(0.3))
                map.erase(key);
            else
                map[key] = i;
        }
        std::vector<std::pair<std::uint64_t, int>> order;
        map.forEach([&](std::uint64_t key, int value) {
            order.emplace_back(key, value);
        });
        return order;
    };
    EXPECT_EQ(build(), build());
}

TEST(FlatMap, PropertyAgainstUnorderedMapOracle)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;
    Rng rng(0xfeedface);

    for (int step = 0; step < 30000; ++step) {
        const std::uint64_t key = rng.nextBelow(2000);
        const std::uint64_t op = rng.nextBelow(10);
        if (op < 5) {
            const std::uint64_t value = rng.next64();
            auto [slot, inserted] = map.tryEmplace(key, value);
            const auto [it, oinserted] = oracle.try_emplace(key, value);
            EXPECT_EQ(inserted, oinserted);
            EXPECT_EQ(*slot, it->second);
        } else if (op < 7) {
            map[key] += 1;
            oracle[key] += 1;
        } else if (op < 9) {
            EXPECT_EQ(map.erase(key), oracle.erase(key) > 0);
        } else {
            const std::uint64_t *found = map.find(key);
            const auto it = oracle.find(key);
            if (it == oracle.end()) {
                EXPECT_EQ(found, nullptr);
            } else {
                ASSERT_NE(found, nullptr);
                EXPECT_EQ(*found, it->second);
            }
        }
        ASSERT_EQ(map.size(), oracle.size());
    }

    // Full cross-check at the end: every oracle entry present, nothing
    // extra surviving in the flat map.
    std::size_t visited = 0;
    map.forEach([&](std::uint64_t key, std::uint64_t value) {
        ++visited;
        const auto it = oracle.find(key);
        ASSERT_NE(it, oracle.end()) << "phantom key " << key;
        EXPECT_EQ(value, it->second);
    });
    EXPECT_EQ(visited, oracle.size());
}

// prefetch() is a pure cache hint: interleaving it with every mutation
// at high frequency must leave the observable behaviour — checked
// against the std oracle — exactly as without it, including on an
// empty map (no slot array to touch) and for wildly out-of-range keys.
TEST(FlatMap, PrefetchIsPureHint)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    map.prefetch(42); // Empty map: must be a safe no-op.

    std::unordered_map<std::uint64_t, std::uint64_t> oracle;
    Rng rng(0xcafed00d);

    for (int step = 0; step < 30000; ++step) {
        const std::uint64_t key = rng.nextBelow(2000);
        map.prefetch(key);
        map.prefetch(~key); // A key that is never inserted.
        const std::uint64_t op = rng.nextBelow(10);
        if (op < 5) {
            const std::uint64_t value = rng.next64();
            auto [slot, inserted] = map.tryEmplace(key, value);
            const auto [it, oinserted] = oracle.try_emplace(key, value);
            EXPECT_EQ(inserted, oinserted);
            EXPECT_EQ(*slot, it->second);
        } else if (op < 7) {
            map[key] += 1;
            oracle[key] += 1;
        } else if (op < 9) {
            EXPECT_EQ(map.erase(key), oracle.erase(key) > 0);
        } else {
            const std::uint64_t *found = map.find(key);
            const auto it = oracle.find(key);
            if (it == oracle.end()) {
                EXPECT_EQ(found, nullptr);
            } else {
                ASSERT_NE(found, nullptr);
                EXPECT_EQ(*found, it->second);
            }
        }
        map.prefetch(key);
        ASSERT_EQ(map.size(), oracle.size());
    }

    std::size_t visited = 0;
    map.forEach([&](std::uint64_t key, std::uint64_t value) {
        ++visited;
        const auto it = oracle.find(key);
        ASSERT_NE(it, oracle.end()) << "phantom key " << key;
        EXPECT_EQ(value, it->second);
    });
    EXPECT_EQ(visited, oracle.size());
}

TEST(FlatSet, PrefetchIsPureHint)
{
    FlatSet<std::uint64_t> set;
    set.prefetch(7); // Empty set: must be a safe no-op.
    for (std::uint64_t key = 0; key < 500; ++key) {
        set.prefetch(key);
        set.insert(key * 3);
        set.prefetch(key * 3);
        EXPECT_TRUE(set.contains(key * 3));
        EXPECT_FALSE(set.contains(key * 3 + 1));
    }
    EXPECT_EQ(set.size(), 500u);
}

TEST(FlatSet, InsertContainsErase)
{
    FlatSet<std::uint64_t> set;
    EXPECT_TRUE(set.insert(9));
    EXPECT_FALSE(set.insert(9));
    EXPECT_TRUE(set.contains(9));
    EXPECT_EQ(set.size(), 1u);
    EXPECT_TRUE(set.erase(9));
    EXPECT_FALSE(set.erase(9));
    EXPECT_TRUE(set.empty());
}

TEST(FlatSet, SortedIteration)
{
    FlatSet<std::uint64_t> set;
    for (std::uint64_t key : { 42ul, 7ul, 19ul })
        set.insert(key);
    std::vector<std::uint64_t> keys;
    set.forEachSorted([&](std::uint64_t key) { keys.push_back(key); });
    const std::vector<std::uint64_t> expect = { 7, 19, 42 };
    EXPECT_EQ(keys, expect);
}

} // namespace
} // namespace dewrite
