/**
 * @file
 * ShardCore equivalence tests: the resumable push-style loop must be
 * bit-identical to CoreModel pulling the same events as one trace, no
 * matter how the feed is chunked — the property that makes the
 * service's round-based ingest invisible to the simulation.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "service/shard_core.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/app_catalog.hh"
#include "trace/trace_gen.hh"

namespace dewrite {
namespace {

/** Replays a recorded event vector as a TraceSource. */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(const std::vector<MemEvent> &events)
        : events_(events)
    {
    }

    bool
    next(MemEvent &event) override
    {
        if (pos_ >= events_.size())
            return false;
        event = events_[pos_++];
        return true;
    }

  private:
    const std::vector<MemEvent> &events_;
    std::size_t pos_ = 0;
};

std::vector<MemEvent>
recordEvents(std::size_t count)
{
    AppProfile profile = appCatalog()[3];
    profile.workingSetLines = 2048;
    SyntheticWorkload workload(profile, appSeed(profile));
    std::vector<MemEvent> events(count);
    for (MemEvent &event : events)
        EXPECT_TRUE(workload.next(event));
    return events;
}

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.memory.numLines = 4096;
    return config;
}

/** Signature of a System run over @p events via the pull path. */
std::string
referenceSignature(const std::vector<MemEvent> &events,
                   const SchemeOptions &scheme)
{
    System system(smallConfig(), scheme);
    VectorTrace trace(events);
    ExperimentResult cell;
    cell.app = "chunk";
    cell.scheme = system.controller().name();
    cell.run = system.run(trace, events.size());
    system.controller().fillStats(cell.stats);
    return resultSignature(cell);
}

/** Signature of a ShardCore fed @p events in @p chunk-sized pieces. */
std::string
pushSignature(const std::vector<MemEvent> &events, std::size_t chunk,
              const SchemeOptions &scheme)
{
    System system(smallConfig(), scheme);
    ShardCore core(system.config().timing, system.controller(),
                   writeBatchSize());
    for (std::size_t i = 0; i < events.size(); i += chunk)
        core.feed(events.data() + i,
                  std::min(chunk, events.size() - i));

    ExperimentResult cell;
    cell.app = "chunk";
    cell.scheme = system.controller().name();
    cell.run = core.finish();
    cell.run.totalEnergy = system.totalEnergy();
    cell.run.nvmLineWrites = system.device().numWrites();
    cell.run.nvmLineReads = system.device().numReads();
    cell.run.bitsProgrammed = system.controller().dataBitsProgrammed();
    system.controller().fillStats(cell.stats);
    return resultSignature(cell);
}

TEST(ShardCore, MatchesCoreModelWhateverTheChunking)
{
    const std::vector<MemEvent> events = recordEvents(4000);
    const SchemeOptions scheme = dewriteScheme(DedupMode::Predicted);
    const std::string reference = referenceSignature(events, scheme);
    // 1 = event-at-a-time; 7 straddles every batch boundary; 4096 is
    // one service round; 5000 = a single feed of everything.
    for (std::size_t chunk : { 1u, 7u, 256u, 4096u, 5000u })
        EXPECT_EQ(pushSignature(events, chunk, scheme), reference)
            << "chunk size " << chunk;
}

TEST(ShardCore, MatchesCoreModelForSecureBaseline)
{
    const std::vector<MemEvent> events = recordEvents(2000);
    const SchemeOptions scheme = secureBaselineScheme();
    EXPECT_EQ(pushSignature(events, 100, scheme),
              referenceSignature(events, scheme));
}

TEST(ShardCore, CountsFlushReasons)
{
    const std::vector<MemEvent> events = recordEvents(2000);
    System system(smallConfig(), dewriteScheme(DedupMode::Predicted));
    ShardCore core(system.config().timing, system.controller(),
                   writeBatchSize());
    core.feed(events.data(), events.size());
    const RunResult run = core.finish();

    EXPECT_EQ(core.events(), events.size());
    EXPECT_EQ(core.former().writesStaged(), run.writes);
    // Every staged write leaves through exactly one flush; a mixed
    // read/write stream must see both read-forced flushes and the
    // trace-end drain (the tail of the last feed).
    EXPECT_GT(core.former().flushes(), 0u);
    EXPECT_GT(core.former().flushesOnRead(), 0u);
    EXPECT_EQ(core.former().flushes(),
              core.former().flushesOnRead() +
                  core.former().flushesOnQueueFull() +
                  core.former().flushesOnBatchFull() +
                  core.former().flushesOnTraceEnd());
}

} // namespace
} // namespace dewrite
