/**
 * @file
 * Telemetry plane implementation.
 */

#include "obs/telemetry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "obs/json_writer.hh"

namespace dewrite::obs {

namespace {

/** Emits one histogram as a compact JSON object. */
void
writeHistJson(JsonWriter &w, const LatencyHistogram &hist)
{
    w.beginObject();
    w.field("count", hist.count());
    w.field("mean", hist.mean());
    w.field("p50", hist.p50());
    w.field("p90", hist.p90());
    w.field("p99", hist.p99());
    w.field("p999", hist.p999());
    w.field("max", hist.max());
    w.endObject();
}

void
writeSkewStats(JsonWriter &w, const SkewMonitor::Stats &stats)
{
    w.beginObject();
    w.field("min", stats.min);
    w.field("mean", stats.mean);
    w.field("max", stats.max);
    w.field("cv", stats.cv);
    w.endObject();
}

double
ratio(std::uint64_t part, std::uint64_t whole)
{
    return whole ? static_cast<double>(part) /
            static_cast<double>(whole)
                 : 0.0;
}

/** Dotted registry path → Prometheus metric name. */
std::string
promName(const std::string &path)
{
    std::string name = "dewrite_";
    for (const char c : path) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        name += ok ? c : '_';
    }
    return name;
}

/** One labelled quantile series for a histogram. */
void
promHistogram(std::FILE *out, const char *name, const char *label_key,
              std::uint64_t label, const LatencyHistogram &hist)
{
    static constexpr struct
    {
        const char *quantile;
        double q;
    } kQuantiles[] = { { "0.5", 0.50 },
                       { "0.9", 0.90 },
                       { "0.99", 0.99 },
                       { "0.999", 0.999 } };
    for (const auto &[text, q] : kQuantiles) {
        std::fprintf(out,
                     "%s{%s=\"%llu\",quantile=\"%s\"} %llu\n", name,
                     label_key, static_cast<unsigned long long>(label),
                     text,
                     static_cast<unsigned long long>(
                         hist.percentile(q)));
    }
    std::fprintf(out, "%s_max{%s=\"%llu\"} %llu\n", name, label_key,
                 static_cast<unsigned long long>(label),
                 static_cast<unsigned long long>(hist.max()));
    std::fprintf(out, "%s_count{%s=\"%llu\"} %llu\n", name, label_key,
                 static_cast<unsigned long long>(label),
                 static_cast<unsigned long long>(hist.count()));
}

} // namespace

ShardTelemetry::ShardTelemetry(std::size_t shards, std::size_t shard,
                               std::uint64_t tenants,
                               std::uint64_t lines_per_tenant)
    : shards_(shards), shard_(shard), perTenant_(lines_per_tenant),
      tenantWrite_(tenants), tenantRead_(tenants),
      tenantEliminated_(tenants, 0)
{
    DEWRITE_CHECK(shard < shards, "telemetry shard %zu of %zu", shard,
                  shards);
    DEWRITE_CHECK(tenants >= 1, "telemetry needs at least one tenant");
}

void
ShardTelemetry::recordWrite(LineAddr local, Time latency,
                            bool eliminated)
{
    write_.record(latency);
    const std::uint64_t tenant = tenantOf(local);
    tenantWrite_[tenant].record(latency);
    if (eliminated) {
        ++eliminated_;
        ++tenantEliminated_[tenant];
    }
}

void
ShardTelemetry::recordRead(LineAddr local, Time latency)
{
    read_.record(latency);
    tenantRead_[tenantOf(local)].record(latency);
}

SkewMonitor::SkewMonitor(std::size_t shards)
    : total_(shards, 0), window_(shards, 0)
{
    DEWRITE_CHECK(shards >= 1, "skew monitor needs at least one shard");
}

SkewMonitor::Stats
SkewMonitor::statsOf(const std::vector<std::uint64_t> &counts)
{
    Stats stats;
    if (counts.empty())
        return stats;
    stats.min = ~std::uint64_t{ 0 };
    double sum = 0.0;
    for (const std::uint64_t c : counts) {
        stats.min = std::min(stats.min, c);
        stats.max = std::max(stats.max, c);
        sum += static_cast<double>(c);
    }
    stats.mean = sum / static_cast<double>(counts.size());
    if (stats.mean > 0.0) {
        double var = 0.0;
        for (const std::uint64_t c : counts) {
            const double d = static_cast<double>(c) - stats.mean;
            var += d * d;
        }
        var /= static_cast<double>(counts.size());
        stats.cv = std::sqrt(var) / stats.mean;
    }
    return stats;
}

void
SkewMonitor::noteRound(const std::uint64_t *events, std::size_t shards)
{
    DEWRITE_CHECK(shards == total_.size(),
                  "skew round over %zu shards, monitor has %zu", shards,
                  total_.size());
    std::vector<std::uint64_t> round(events, events + shards);
    for (std::size_t k = 0; k < shards; ++k) {
        total_[k] += events[k];
        window_[k] += events[k];
    }
    lastRound_ = statsOf(round);
    ++rounds_;
}

SkewMonitor::Stats
SkewMonitor::totalStats() const
{
    return statsOf(total_);
}

SkewMonitor::Stats
SkewMonitor::windowStats() const
{
    return statsOf(window_);
}

void
SkewMonitor::resetWindow()
{
    std::fill(window_.begin(), window_.end(), 0);
}

TelemetryConfig
TelemetryConfig::fromEnv()
{
    TelemetryConfig config;
    // The sink path is a free-form file name, so it cannot go through
    // the numeric validators; presence is the only contract.
    // dewrite-lint: allow(env-fail-fast)
    if (const char *path = envRaw("DEWRITE_TELEMETRY"))
        config.path = path;
    config.everyRounds = envUint("DEWRITE_TELEMETRY_EVERY", 16, 1,
                                 std::uint64_t{ 1 } << 20);
    return config;
}

TelemetrySink::TelemetrySink(const TelemetryConfig &config)
    : config_(config)
{
    if (!config_.enabled())
        return;
    jsonl_ = std::fopen(config_.path.c_str(), "a");
    if (!jsonl_) {
        warn("cannot open telemetry sink %s", config_.path.c_str());
        ok_ = false;
    }
}

TelemetrySink::~TelemetrySink()
{
    if (jsonl_)
        std::fclose(jsonl_);
}

bool
TelemetrySink::emit(const TelemetryFrame &frame)
{
    if (!enabled() || !jsonl_)
        return ok_;

    const std::size_t shards = frame.shards.size();
    const std::uint64_t tenants =
        shards ? frame.shards[0]->tenants() : 0;
    prevShardWrites_.resize(shards, 0);
    prevShardEliminated_.resize(shards, 0);
    prevTenantWrites_.resize(tenants, 0);
    prevTenantEliminated_.resize(tenants, 0);

    std::string line;
    JsonWriter w(&line, /*pretty=*/false);
    w.beginObject();
    w.field("type", "telemetry");
    w.field("round", frame.round);
    w.field("final", frame.final);
    w.field("events", frame.totalEvents);
    w.field("shards", static_cast<std::uint64_t>(shards));
    w.field("tenants", tenants);

    if (frame.skew) {
        w.key("skew");
        w.beginObject();
        w.key("round");
        writeSkewStats(w, frame.skew->lastRound());
        w.key("window");
        writeSkewStats(w, frame.skew->windowStats());
        w.key("total");
        writeSkewStats(w, frame.skew->totalStats());
        w.field("alert", frame.skew->alert());
        w.endObject();
    }

    w.key("per_shard");
    w.beginArray();
    for (std::size_t k = 0; k < shards; ++k) {
        const ShardTelemetry &shard = *frame.shards[k];
        const std::uint64_t writes = shard.writes();
        const std::uint64_t eliminated = shard.writesEliminated();
        w.beginObject();
        w.field("shard", static_cast<std::uint64_t>(k));
        w.field("events", k < frame.shardEvents.size()
                              ? frame.shardEvents[k]
                              : 0);
        w.field("writes", writes);
        w.field("writes_eliminated", eliminated);
        w.field("dup_ratio", ratio(eliminated, writes));
        w.field("dup_ratio_epoch",
                ratio(eliminated - prevShardEliminated_[k],
                      writes - prevShardWrites_[k]));
        prevShardWrites_[k] = writes;
        prevShardEliminated_[k] = eliminated;
        w.key("write_latency_ps");
        writeHistJson(w, shard.writeHist());
        w.key("read_latency_ps");
        writeHistJson(w, shard.readHist());
        w.key("batch_span_ps");
        writeHistJson(w, shard.batchHist());
        w.endObject();
    }
    w.endArray();

    // Per-tenant aggregates: shard-local histograms merged here, at
    // the emit boundary — never on the drain hot path.
    w.key("per_tenant");
    w.beginArray();
    for (std::uint64_t t = 0; t < tenants; ++t) {
        LatencyHistogram write_hist;
        LatencyHistogram read_hist;
        std::uint64_t eliminated = 0;
        for (const ShardTelemetry *shard : frame.shards) {
            write_hist.merge(shard->tenantWriteHist(t));
            read_hist.merge(shard->tenantReadHist(t));
            eliminated += shard->tenantWritesEliminated(t);
        }
        const std::uint64_t writes = write_hist.count();
        w.beginObject();
        w.field("tenant", t);
        w.field("writes", writes);
        w.field("writes_eliminated", eliminated);
        w.field("dup_ratio", ratio(eliminated, writes));
        w.field("dup_ratio_epoch",
                ratio(eliminated - prevTenantEliminated_[t],
                      writes - prevTenantWrites_[t]));
        prevTenantWrites_[t] = writes;
        prevTenantEliminated_[t] = eliminated;
        w.key("write_latency_ps");
        writeHistJson(w, write_hist);
        w.key("read_latency_ps");
        writeHistJson(w, read_hist);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    if (!w.ok() || std::fputs(line.c_str(), jsonl_) == EOF ||
        std::fputc('\n', jsonl_) == EOF || std::fflush(jsonl_) != 0) {
        ok_ = false;
    }
    ++snapshots_;

    // Prometheus exposition: rewrite-and-rename so a concurrent scrape
    // never sees a half-written file.
    const std::string tmp = promPath() + ".tmp";
    if (std::FILE *prom = std::fopen(tmp.c_str(), "w")) {
        bool prom_ok = writePromText(prom, frame.samples);
        for (std::size_t k = 0; k < shards; ++k) {
            const ShardTelemetry &shard = *frame.shards[k];
            promHistogram(prom, "dewrite_shard_write_latency_ps",
                          "shard", k, shard.writeHist());
            promHistogram(prom, "dewrite_shard_read_latency_ps",
                          "shard", k, shard.readHist());
            promHistogram(prom, "dewrite_shard_batch_span_ps", "shard",
                          k, shard.batchHist());
        }
        for (std::uint64_t t = 0; t < tenants; ++t) {
            LatencyHistogram write_hist;
            LatencyHistogram read_hist;
            for (const ShardTelemetry *shard : frame.shards) {
                write_hist.merge(shard->tenantWriteHist(t));
                read_hist.merge(shard->tenantReadHist(t));
            }
            promHistogram(prom, "dewrite_tenant_write_latency_ps",
                          "tenant", t, write_hist);
            promHistogram(prom, "dewrite_tenant_read_latency_ps",
                          "tenant", t, read_hist);
        }
        prom_ok = std::fclose(prom) == 0 && prom_ok;
        if (!prom_ok ||
            std::rename(tmp.c_str(), promPath().c_str()) != 0) {
            ok_ = false;
        }
    } else {
        ok_ = false;
    }
    return ok_;
}

bool
writePromText(std::FILE *out, const std::vector<MetricSample> &samples)
{
    bool ok = true;
    for (const MetricSample &sample : samples) {
        const std::string name = promName(sample.path);
        const char *type =
            sample.kind == MetricKind::Counter ? "counter" : "gauge";
        if (std::fprintf(out, "# TYPE %s %s\n%s %.17g\n", name.c_str(),
                         type, name.c_str(), sample.value) < 0) {
            ok = false;
        }
    }
    return ok && std::fflush(out) == 0;
}

} // namespace dewrite::obs
