/**
 * @file
 * Figure 17 — IPC normalized to the traditional secure NVM.
 *
 * Writes stall the cores (persist ordering), so the write latency each
 * scheme achieves translates directly into instruction throughput.
 *
 * Paper's shape: +82% mean IPC; dup-heavy applications gain the most.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

int
main()
{
    std::printf("Figure 17: IPC relative to the secure baseline\n\n");

    SystemConfig config;
    TablePrinter table({ "app", "baseline IPC", "DeWrite IPC",
                         "relative" });
    double rel_sum = 0.0;
    for (const AppProfile &app : appCatalog()) {
        const ExperimentResult base =
            runApp(app, config, secureBaselineScheme());
        const ExperimentResult dewrite =
            runApp(app, config, dewriteScheme(DedupMode::Predicted));
        const double relative = dewrite.run.ipc / base.run.ipc;
        rel_sum += relative;
        table.addRow({ app.name, TablePrinter::num(base.run.ipc, 3),
                       TablePrinter::num(dewrite.run.ipc, 3),
                       TablePrinter::times(relative) });
    }
    table.addRow({ "AVERAGE", "-", "-",
                   TablePrinter::times(
                       rel_sum /
                       static_cast<double>(appCatalog().size())) });
    table.print();

    std::printf("\npaper: +82%% mean IPC improvement\n");
    return 0;
}
