/**
 * @file
 * The memory-controller interface every scheme implements.
 *
 * A controller owns a write/read policy (encryption, deduplication,
 * bit-level reduction) over a shared NvmDevice. All latencies are
 * absolute-time based: the caller supplies the issue time and receives
 * the request latency, which lets the trace-driven core model apply
 * persistent-memory semantics (writes stall the core until complete).
 */

#ifndef DEWRITE_CONTROLLER_MEM_CONTROLLER_HH
#define DEWRITE_CONTROLLER_MEM_CONTROLLER_HH

#include <string>

#include "common/line.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/latency_histogram.hh"
#include "obs/metric_registry.hh"

namespace dewrite {

namespace obs {
class WriteTracer;
} // namespace obs

/** Outcome of a write request. */
struct CtrlWriteResult
{
    Time latency = 0;        //!< Issue-to-complete time.
    bool eliminated = false; //!< No data-line NVM write was needed.
};

/** Outcome of a read request. */
struct CtrlReadResult
{
    Line data;
    Time latency = 0;
    bool valid = false; //!< The line had been written before.
};

/** Upper bound on writeBatch() group size (= DEWRITE_BATCH's max). */
inline constexpr std::size_t kMaxWriteBatch = 64;

/**
 * One member of a batched write hand-off (see CoreModel's batch
 * former). @p data points into the former's staging buffer and is
 * valid for the duration of the writeBatch() call.
 */
struct CtrlWriteRequest
{
    LineAddr addr = 0;
    const Line *data = nullptr;
    Time now = 0; //!< Issue time, exactly as write() would receive it.
};

class MemController
{
  public:
    virtual ~MemController() = default;

    /** Writes back one cache line at @p now. */
    virtual CtrlWriteResult write(LineAddr addr, const Line &data,
                                  Time now) = 0;

    /** Fetches one cache line at @p now. */
    virtual CtrlReadResult read(LineAddr addr, Time now) = 0;

    /**
     * read() for callers that consume only the timing: all simulated
     * effects (latency, energy, stats) are identical to read(), but
     * the result's data member may be left zero. The in-order core
     * uses this — it discards load data — so schemes can skip the
     * host-side pad generation and line XOR of the decrypt.
     */
    virtual CtrlReadResult readTiming(LineAddr addr, Time now)
    {
        return read(addr, now);
    }

    /**
     * Writes a group of @p count lines. The contract is strict
     * equivalence: results, all simulated state, and all metrics are
     * identical to calling write() per request in array order — the
     * batch only lets a scheme overlap *host-side* work (digests,
     * prefetches, AES pad generation) across members. The base
     * implementation is exactly that serial loop.
     */
    virtual void writeBatch(const CtrlWriteRequest *requests,
                            CtrlWriteResult *results, std::size_t count);

    /** Scheme name for reports. */
    virtual std::string name() const = 0;

    /**
     * Energy consumed by controller-side machinery (AES circuit, dedup
     * logic, metadata caches) — the NVM device's own energy is
     * accounted by the device.
     */
    virtual Energy controllerEnergy() const = 0;

    /**
     * Registers every metric the controller exposes — the common
     * request accounting under "controller.*" plus whatever the scheme
     * adds via registerSchemeMetrics() — into @p registry. The System
     * calls this once at wiring time; harnesses may also call it on a
     * scratch registry to snapshot a controller in isolation.
     */
    void registerMetrics(obs::MetricRegistry &registry) const;

    /**
     * Legacy flat view: fills @p stats with the historical per-scheme
     * StatSet keys (a registry-backed compatibility shim — same names
     * and values the schemes used to hand-write).
     */
    void fillStats(StatSet &stats) const;

    /**
     * Attaches (or detaches, with nullptr) the write-pipeline event
     * tracer. Non-owning; the caller keeps the tracer alive across the
     * run. Controllers record one event per serviced write when a
     * tracer is attached.
     */
    void attachTracer(obs::WriteTracer *tracer) { tracer_ = tracer; }

    /** @{ Aggregate request accounting common to all schemes. */
    std::uint64_t writeRequests() const { return writeRequests_.value(); }
    std::uint64_t readRequests() const { return readRequests_.value(); }
    std::uint64_t writesEliminated() const
    {
        return writesEliminated_.value();
    }
    double avgWriteLatency() const { return writeLatency_.mean(); }
    double avgReadLatency() const { return readLatency_.mean(); }

    /**
     * @{ Full latency distributions, bucketed at noteWrite/noteRead —
     * the base class records them, so every scheme (secure baseline
     * included) exposes the same "controller.{write,read}_latency.*"
     * quantile paths and telemetry snapshots stay scheme-comparable.
     */
    const obs::LatencyHistogram &writeLatencyHist() const
    {
        return writeLatencyHist_;
    }
    const obs::LatencyHistogram &readLatencyHist() const
    {
        return readLatencyHist_;
    }
    /** @} */

    /** Cell bits programmed by data writes (Figure 13 numerator). */
    std::uint64_t dataBitsProgrammed() const
    {
        return dataBitsProgrammed_.value();
    }
    /** @} */

  protected:
    /**
     * Scheme-specific additions to registerMetrics(): subclasses
     * register their own counters/gauges (and legacy StatSet aliases)
     * under nested scopes. The default registers nothing.
     */
    virtual void registerSchemeMetrics(obs::MetricRegistry &registry) const;

    /** Attached event tracer, or null (the common case). */
    obs::WriteTracer *tracer_ = nullptr;

    /** Subclasses record every request through these. */
    void
    noteWrite(Time latency, bool eliminated, std::size_t bits_programmed)
    {
        writeRequests_.increment();
        if (eliminated)
            writesEliminated_.increment();
        writeLatency_.add(static_cast<double>(latency));
        writeLatencyHist_.record(latency);
        dataBitsProgrammed_.increment(bits_programmed);
    }

    void
    noteRead(Time latency)
    {
        readRequests_.increment();
        readLatency_.add(static_cast<double>(latency));
        readLatencyHist_.record(latency);
    }

  private:
    Counter writeRequests_;
    Counter readRequests_;
    Counter writesEliminated_;
    Counter dataBitsProgrammed_;
    Accumulator writeLatency_;
    Accumulator readLatency_;
    obs::LatencyHistogram writeLatencyHist_;
    obs::LatencyHistogram readLatencyHist_;
};

} // namespace dewrite

#endif // DEWRITE_CONTROLLER_MEM_CONTROLLER_HH
