/**
 * @file
 * Hierarchical metric registry: every component's counters under one
 * dotted namespace.
 *
 * Components own their stat primitives (Counter / Accumulator /
 * Histogram from common/stats.hh, or a computed gauge) exactly as
 * before; the registry holds typed, non-owning references to them
 * under component paths ("controller.dedup.duplicate_commits",
 * "cache.metadata.hit_rate.mapping", ...). Registration happens once
 * at wiring time, so the hot path is untouched — reading a snapshot
 * walks the registered references.
 *
 * Two read-side views:
 *  - snapshot(): deterministic (path-sorted) list of samples, the
 *    machine-readable export every bench and the trace tools use;
 *  - fillStatSet(): the legacy flat StatSet view. Entries registered
 *    with a legacy name reproduce the historical StatSet keys
 *    byte-for-byte, which keeps the golden-parity fingerprints and
 *    every stats.get() call site working unchanged.
 *
 * Paths must be unique; a collision is a wiring bug and panics.
 */

#ifndef DEWRITE_OBS_METRIC_REGISTRY_HH
#define DEWRITE_OBS_METRIC_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace dewrite::obs {

class JsonWriter;

/** What kind of primitive a registry entry references. */
enum class MetricKind : std::uint8_t
{
    Counter,
    Gauge,
    Accumulator,
    Histogram,
};

/** One read-only view of a registered metric at snapshot time. */
struct MetricSample
{
    std::string path;
    MetricKind kind = MetricKind::Gauge;
    double value = 0.0; //!< Counter/gauge value; accumulator mean;
                        //!< histogram total.

    bool operator==(const MetricSample &other) const = default;
};

class MetricRegistry
{
  public:
    /** A registered metric: a typed, non-owning reference. */
    struct Entry
    {
        std::string path;
        std::string desc;
        std::string legacy; //!< StatSet-compat key ("" = not exported).
        MetricKind kind = MetricKind::Gauge;

        const dewrite::Counter *counter = nullptr;
        const dewrite::Accumulator *accumulator = nullptr;
        const dewrite::Histogram *histogram = nullptr;
        std::function<double()> gauge;

        /** Primary scalar of the metric (see MetricSample::value). */
        double read() const;
    };

    /** @{ Registration. @p legacy names the StatSet-compat key. */
    void addCounter(std::string path, const dewrite::Counter &counter,
                    std::string desc, std::string legacy = "");
    void addGauge(std::string path, std::function<double()> fn,
                  std::string desc, std::string legacy = "");
    void addAccumulator(std::string path,
                        const dewrite::Accumulator &accumulator,
                        std::string desc, std::string legacy = "");
    void addHistogram(std::string path,
                      const dewrite::Histogram &histogram,
                      std::string desc, std::string legacy = "");
    /** @} */

    /**
     * Attaches a legacy StatSet name to the already-registered @p path.
     * Used where the historical flat name belongs to a metric whose
     * canonical registration lives in a shared base class.
     */
    void aliasLegacy(const std::string &path, std::string legacy);

    bool has(const std::string &path) const;
    const Entry *find(const std::string &path) const;
    std::size_t size() const { return entries_.size(); }

    /** All entries in registration order (iteration for reporters). */
    const std::vector<Entry> &entries() const { return entries_; }

    /** Path-sorted, deterministic point-in-time view. */
    std::vector<MetricSample> snapshot() const;

    /** Legacy flat view: one stats.set(legacy, value) per aliased entry. */
    void fillStatSet(StatSet &out) const;

    /** Writes the snapshot as one flat JSON object {path: value}. */
    void writeJson(JsonWriter &w) const;

    /** Registration helper that prefixes every path with "<prefix>.". */
    class Scope
    {
      public:
        Scope(MetricRegistry &registry, std::string prefix)
            : registry_(registry), prefix_(std::move(prefix))
        {
        }

        Scope scope(const std::string &sub) const
        {
            return Scope(registry_, prefix_ + "." + sub);
        }

        void counter(const std::string &name,
                     const dewrite::Counter &c, std::string desc,
                     std::string legacy = "")
        {
            registry_.addCounter(prefix_ + "." + name, c,
                                 std::move(desc), std::move(legacy));
        }

        void gauge(const std::string &name, std::function<double()> fn,
                   std::string desc, std::string legacy = "")
        {
            registry_.addGauge(prefix_ + "." + name, std::move(fn),
                               std::move(desc), std::move(legacy));
        }

        void accumulator(const std::string &name,
                         const dewrite::Accumulator &a, std::string desc,
                         std::string legacy = "")
        {
            registry_.addAccumulator(prefix_ + "." + name, a,
                                     std::move(desc), std::move(legacy));
        }

        void histogram(const std::string &name,
                       const dewrite::Histogram &h, std::string desc,
                       std::string legacy = "")
        {
            registry_.addHistogram(prefix_ + "." + name, h,
                                   std::move(desc), std::move(legacy));
        }

        const std::string &prefix() const { return prefix_; }
        MetricRegistry &registry() const { return registry_; }

      private:
        MetricRegistry &registry_;
        std::string prefix_;
    };

    Scope scope(std::string prefix) { return Scope(*this, std::move(prefix)); }

  private:
    Entry &insert(std::string path, std::string desc, std::string legacy,
                  MetricKind kind);

    std::vector<Entry> entries_;
    std::map<std::string, std::size_t> byPath_;
};

} // namespace dewrite::obs

#endif // DEWRITE_OBS_METRIC_REGISTRY_HH
