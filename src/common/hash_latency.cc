/**
 * @file
 * Hash catalog implementation.
 */

#include "common/hash_latency.hh"

#include "common/logging.hh"

namespace dewrite {

namespace {

const std::vector<HashSpec> kSpecs = {
    { HashFunction::Crc32, "CRC-32", 15 * kNanoSecond, 32, false },
    { HashFunction::Md5, "MD5", 312 * kNanoSecond, 128, true },
    { HashFunction::Sha1, "SHA-1", 321 * kNanoSecond, 160, true },
};

} // namespace

const HashSpec &
hashSpec(HashFunction function)
{
    for (const auto &spec : kSpecs) {
        if (spec.function == function)
            return spec;
    }
    panic("unknown hash function %d", static_cast<int>(function));
}

const std::vector<HashSpec> &
allHashSpecs()
{
    return kSpecs;
}

} // namespace dewrite
