/**
 * @file
 * DupPredictor implementation.
 */

#include "dedup/predictor.hh"

#include <bit>

#include "common/logging.hh"

namespace dewrite {

DupPredictor::DupPredictor(unsigned history_bits)
    : historyBits_(history_bits)
{
    if (history_bits == 0 || history_bits > 64)
        fatal("predictor history must be 1..64 bits, got %u", history_bits);
}

bool
DupPredictor::predictDuplicate() const
{
    if (filled_ == 0)
        return false; // Cold start: assume non-duplicate.
    const unsigned ones = std::popcount(window_);
    if (2 * ones > filled_)
        return true;
    if (2 * ones < filled_)
        return false;
    // Tie: follow the most recent write's state.
    return window_ & 1;
}

void
DupPredictor::record(bool was_duplicate)
{
    window_ = (window_ << 1) | (was_duplicate ? 1 : 0);
    if (filled_ < historyBits_)
        ++filled_;
    window_ &= (historyBits_ == 64) ? ~0ULL : ((1ULL << historyBits_) - 1);
}

void
DupPredictor::recordAndScore(bool was_duplicate)
{
    predictions_.increment();
    if (predictDuplicate() == was_duplicate)
        correct_.increment();
    record(was_duplicate);
}

double
DupPredictor::accuracy() const
{
    return predictions_.value()
        ? static_cast<double>(correct_.value()) / predictions_.value()
        : 0.0;
}

} // namespace dewrite
