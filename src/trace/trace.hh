/**
 * @file
 * Memory-event traces: the interface between workloads and the system.
 *
 * A trace is a stream of line-granularity memory events (LLC misses and
 * write-backs) annotated with the number of non-memory instructions the
 * core retires before each event — everything the memory-side model
 * needs from the CPU it replaces (DESIGN.md Section 2).
 */

#ifndef DEWRITE_TRACE_TRACE_HH
#define DEWRITE_TRACE_TRACE_HH

#include <cstdint>

#include "common/line.hh"
#include "common/types.hh"

namespace dewrite {

/** One memory event reaching the memory controller. */
struct MemEvent
{
    bool isWrite = false;
    LineAddr addr = 0;
    Line data;                   //!< Write-back content (writes only).
    std::uint64_t instGap = 0;   //!< Instructions retired since the
                                 //!< previous memory event.
};

/** A pull-based stream of memory events. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produces the next event.
     * @return false when the trace is exhausted (synthetic workloads
     *         are typically unbounded and always return true).
     */
    virtual bool next(MemEvent &event) = 0;
};

} // namespace dewrite

#endif // DEWRITE_TRACE_TRACE_HH
