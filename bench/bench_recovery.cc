/**
 * @file
 * Metadata crash recovery (Section V) — an extension experiment.
 *
 * For three representative applications: run a workload, crash-damage
 * the derived metadata (hash store + FSM, the structures whose
 * writebacks are lazy), rebuild from the durable tables, and verify
 * consistency. Also sweeps the modelled recovery scan time against
 * memory size, and compares the NVM write amplification of the two
 * Section V durability policies.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "controller/dewrite_controller.hh"
#include "dedup/recovery.hh"
#include "sim/parallel_runner.hh"
#include "trace/app_catalog.hh"

using namespace dewrite;

namespace {

struct CrashCell {
    std::size_t records = 0;
    bool damagedConsistent = false;
    RecoveryReport rebuilt;
    bool healedConsistent = false;
};

} // namespace

int
main()
{
    std::printf("Metadata crash recovery (Section V extension)\n\n");

    SystemConfig config;
    config.memory.numLines = 1 << 18; // Keep audits brisk.

    std::printf("(a) crash, rebuild, audit\n\n");
    {
        const char *const names[] = { "lbm", "gcc", "vips" };
        std::vector<CrashCell> cells(3);
        parallelFor(cells.size(), [&](std::size_t i) {
            DetailedExperiment detailed = runAppDetailed(
                appByName(names[i]), config,
                dewriteScheme(DedupMode::Predicted),
                experimentEvents() / 4, appSeed(appByName(names[i])));
            auto &ctrl = dynamic_cast<DeWriteController &>(
                detailed.system->controller());
            // The engine is owned by the controller; recovery operates
            // in place.
            auto &engine = const_cast<DedupEngine &>(ctrl.engine());
            RecoveryManager recovery(engine);

            CrashCell &cell = cells[i];
            cell.records = engine.hashStore().size();
            recovery.simulateCrashDamage();
            cell.damagedConsistent = recovery.audit().consistent();
            cell.rebuilt = recovery.rebuild();
            cell.healedConsistent = recovery.audit().consistent();
        });
        TablePrinter table({ "app", "records", "audit after crash",
                             "rebuilt", "audit after rebuild",
                             "scan time (ms)" });
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const CrashCell &cell = cells[i];
            table.addRow(
                { names[i], TablePrinter::num(cell.records, 0),
                  cell.damagedConsistent ? "clean (?)" : "violations",
                  TablePrinter::num(cell.rebuilt.recordsRebuilt, 0),
                  cell.healedConsistent ? "clean" : "VIOLATIONS",
                  TablePrinter::num(
                      static_cast<double>(
                          cell.rebuilt.estimatedScanTime) /
                          kMilliSecond,
                      2) });
        }
        table.print();
    }

    std::printf("\n(b) recovery scan time vs memory size\n\n");
    {
        TablePrinter table({ "memory", "metadata scanned",
                             "scan time (ms)" });
        for (std::uint64_t gib : { 1ULL, 4ULL, 16ULL }) {
            SystemConfig swept;
            swept.memory.numLines = gib * (1ULL << 30) / kLineSize;
            // The scan estimate is structural; derive it the same way
            // RecoveryManager does.
            const std::uint64_t region_lines =
                2 * ((swept.memory.numLines * 33 + kLineBits - 1) /
                     kLineBits);
            const Time scan = region_lines * swept.timing.nvmRead /
                              swept.timing.numBanks;
            table.addRow(
                { TablePrinter::num(static_cast<double>(gib), 0) +
                      " GiB",
                  TablePrinter::num(
                      static_cast<double>(region_lines) * kLineSize /
                          (1 << 20),
                      1) + " MiB",
                  TablePrinter::num(
                      static_cast<double>(scan) / kMilliSecond, 1) });
        }
        table.print();
    }

    std::printf("\n(c) durability policy write amplification\n\n");
    {
        const char *const names[] = { "lbm", "vips" };
        const MetadataWritePolicy policies[] = {
            MetadataWritePolicy::LazyBattery,
            MetadataWritePolicy::WriteThrough
        };
        std::vector<ExperimentResult> cells(4);
        parallelFor(cells.size(), [&](std::size_t i) {
            SystemConfig swept = config;
            swept.memory.metadataWritePolicy = policies[i % 2];
            cells[i] = runApp(appByName(names[i / 2]), swept,
                              dewriteScheme(DedupMode::Predicted),
                              experimentEvents() / 4,
                              appSeed(appByName(names[i / 2])));
        });
        TablePrinter table({ "app", "policy", "metadata NVM writes",
                             "write lat (ns)" });
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const ExperimentResult &r = cells[i];
            table.addRow(
                { names[i / 2],
                  policies[i % 2] == MetadataWritePolicy::LazyBattery
                      ? "lazy (battery)"
                      : "write-through",
                  TablePrinter::num(
                      r.stats.get("metadata_writebacks"), 0),
                  TablePrinter::num(r.run.avgWriteLatencyNs, 1) });
        }
        table.print();
    }

    std::printf("\nThe derived metadata (hash store, FSM) rebuilds from "
                "the durable tables in one scan; write-through trades "
                "~an order of magnitude more metadata NVM writes for "
                "battery-free durability.\n");
    return 0;
}
