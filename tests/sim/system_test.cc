/**
 * @file
 * System facade tests.
 */

#include "sim/system.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/experiment.hh"
#include "trace/app_catalog.hh"
#include "trace/trace_gen.hh"

namespace dewrite {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.memory.numLines = 1 << 16;
    return config;
}

TEST(SystemTest, DirectApiRoundTrip)
{
    System system(smallConfig(), dewriteScheme(DedupMode::Predicted));
    Rng rng(131);
    const Line data = Line::random(rng);
    system.write(1, data);
    EXPECT_EQ(system.read(1).data, data);
    EXPECT_GT(system.now(), 0u);
}

TEST(SystemTest, SchemeKindSelectsController)
{
    System plain(smallConfig(), plainScheme());
    EXPECT_EQ(plain.controller().name(), "plain-nvm");
    System baseline(smallConfig(), secureBaselineScheme());
    EXPECT_EQ(baseline.controller().name(), "secure-baseline");
    System dewrite(smallConfig(), dewriteScheme(DedupMode::Predicted));
    EXPECT_EQ(dewrite.controller().name(), "dewrite-predicted");
}

TEST(SystemTest, RunProducesConsistentAccounting)
{
    System system(smallConfig(), dewriteScheme(DedupMode::Predicted));
    SyntheticWorkload trace(appByName("gcc"), 1);
    const RunResult result = system.run(trace, 2000);

    EXPECT_EQ(result.events, 2000u);
    EXPECT_EQ(result.writes + result.reads, result.events);
    EXPECT_GT(result.instructions, result.events);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_LE(result.ipc, 1.0); // In-order core, 1 IPC peak.
    EXPECT_GT(result.avgWriteLatencyNs, 0.0);
    EXPECT_GT(result.avgReadLatencyNs, 0.0);
    EXPECT_GT(result.totalEnergy, 0u);
    EXPECT_GT(result.writesEliminated, 0u);
    EXPECT_LT(result.writesEliminated, result.writes);
}

TEST(SystemTest, DeterministicAcrossRuns)
{
    const RunResult a = [&] {
        System system(smallConfig(), dewriteScheme(DedupMode::Predicted));
        SyntheticWorkload trace(appByName("mcf"), 7);
        return system.run(trace, 1500);
    }();
    const RunResult b = [&] {
        System system(smallConfig(), dewriteScheme(DedupMode::Predicted));
        SyntheticWorkload trace(appByName("mcf"), 7);
        return system.run(trace, 1500);
    }();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.writesEliminated, b.writesEliminated);
    EXPECT_EQ(a.nvmLineWrites, b.nvmLineWrites);
}

TEST(SystemTest, ExperimentHelperFillsStats)
{
    const ExperimentResult result =
        runApp(appByName("bzip2"), smallConfig(),
               dewriteScheme(DedupMode::Predicted), 1500, 3);
    EXPECT_EQ(result.app, "bzip2");
    EXPECT_EQ(result.scheme, "dewrite-predicted");
    EXPECT_EQ(result.stats.get("writes"),
              static_cast<double>(result.run.writes));
}

TEST(SystemTest, ExperimentEventsEnvOverride)
{
    setenv("DEWRITE_EVENTS", "777", 1);
    EXPECT_EQ(experimentEvents(), 777u);
    unsetenv("DEWRITE_EVENTS");
    EXPECT_EQ(experimentEvents(), 120000u);
}

TEST(SystemTest, StatsDumpCoversComponents)
{
    System system(smallConfig(), dewriteScheme(DedupMode::Predicted));
    Rng rng(132);
    const Line data = Line::random(rng);
    system.write(1, data);
    system.write(2, data);
    system.read(1);

    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    system.dumpStats(tmp);
    std::rewind(tmp);

    std::string dump;
    char buf[512];
    while (std::fgets(buf, sizeof(buf), tmp))
        dump += buf;
    std::fclose(tmp);

    EXPECT_NE(dump.find("scheme: dewrite-predicted"), std::string::npos);
    EXPECT_NE(dump.find("device.num_writes"), std::string::npos);
    EXPECT_NE(dump.find("controller.writes_eliminated"),
              std::string::npos);
    EXPECT_NE(dump.find("controller.prediction_accuracy"),
              std::string::npos);
    EXPECT_NE(dump.find("End Simulation Statistics"), std::string::npos);
}

TEST(SystemTest, AppSeedIsStablePerApp)
{
    EXPECT_EQ(appSeed(appByName("lbm")), appSeed(appByName("lbm")));
    EXPECT_NE(appSeed(appByName("lbm")), appSeed(appByName("mcf")));
}

} // namespace
} // namespace dewrite
