#!/usr/bin/env python3
"""Validates the uniform BENCH_*.json schema every bench binary emits.

Every report written through obs::BenchReport starts with the same
header block; figure-regression tooling keys off it, so CI fails fast
when a bench drifts from the contract:

    {
      "bench": "<name>",          # string, matches the file name
      "schema_version": 1,        # integer, bumped on breaking change
      "events_per_cell": <uint>,  # 0 when not event-driven
      "threads": <uint>,          # worker count used for the run
      ...                         # bench-specific payload
    }

With no FILES arguments, checks every BENCH_*.json in the current
directory (override with --glob-dir).

Exit codes: 0 all reports valid, 1 malformed report or none found,
2 usage error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

SCHEMA_VERSION = 1
HEADER = ("bench", "schema_version", "events_per_cell", "threads")


class SchemaError(Exception):
    """One report violated the contract; str() is the diagnostic."""


def fail(path: str, message: str) -> None:
    raise SchemaError(f"{path}: {message}")


def check_report(path: str, report: object) -> None:
    """Validate one parsed report; raises SchemaError on violation."""
    if not isinstance(report, dict):
        fail(path, "top level must be a JSON object")
    for key in HEADER:
        if key not in report:
            fail(path, f"missing required header key {key!r}")

    # The first keys must be the header, in order, so that a human
    # opening any report sees the provenance block first.
    if list(report)[: len(HEADER)] != list(HEADER):
        fail(path, f"header keys must lead the report, in order {HEADER}")

    bench = report["bench"]
    if not isinstance(bench, str) or not bench:
        fail(path, "'bench' must be a non-empty string")
    if os.path.basename(path) != f"BENCH_{bench}.json":
        fail(path, f"file name does not match bench name {bench!r}")
    if report["schema_version"] != SCHEMA_VERSION:
        fail(path, f"schema_version must be {SCHEMA_VERSION}")
    for key in ("events_per_cell", "threads"):
        value = report[key]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            fail(path, f"{key!r} must be a non-negative integer")
    if report["threads"] < 1:
        fail(path, "'threads' must be at least 1")


def check_file(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(path, f"unreadable or invalid JSON: {error}")
    check_report(path, report)


def self_test() -> int:
    """Seeded-violation check: the validator must accept a conforming
    report and name the defect in each broken variant."""
    good = {"bench": "fig04", "schema_version": SCHEMA_VERSION,
            "events_per_cell": 120000, "threads": 4, "extra": [1, 2]}
    check_report("BENCH_fig04.json", good)

    broken = [
        ("missing required header key",
         {"bench": "fig04", "schema_version": 1, "threads": 1}),
        ("header keys must lead",
         {"extra": 1, "bench": "fig04", "schema_version": 1,
          "events_per_cell": 0, "threads": 1}),
        ("file name does not match",
         {"bench": "other", "schema_version": 1,
          "events_per_cell": 0, "threads": 1}),
        ("schema_version must be",
         {"bench": "fig04", "schema_version": 99,
          "events_per_cell": 0, "threads": 1}),
        ("non-negative integer",
         {"bench": "fig04", "schema_version": 1,
          "events_per_cell": True, "threads": 1}),
        ("'threads' must be at least 1",
         {"bench": "fig04", "schema_version": 1,
          "events_per_cell": 0, "threads": 0}),
        ("top level must be a JSON object", [1, 2, 3]),
    ]
    for expect, report in broken:
        try:
            check_report("BENCH_fig04.json", report)
        except SchemaError as error:
            assert expect in str(error), (expect, str(error))
        else:
            raise AssertionError(f"accepted broken report: {expect}")
    print("check_bench_schema self-test: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__.split("\n", 1)[1])
    parser.add_argument("files", nargs="*",
                        help="report files to validate (default: "
                             "BENCH_*.json in --glob-dir)")
    parser.add_argument("--glob-dir", default=".",
                        help="directory scanned when no files are "
                             "given (default: %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation self-test and "
                             "exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    paths = args.files or sorted(
        glob.glob(os.path.join(args.glob_dir, "BENCH_*.json")))
    if not paths:
        print("no BENCH_*.json reports found", file=sys.stderr)
        return 1
    for path in paths:
        try:
            check_file(path)
        except SchemaError as error:
            print(error, file=sys.stderr)
            return 1
    print(f"checked {len(paths)} report(s): schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
