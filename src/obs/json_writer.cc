/**
 * @file
 * JsonWriter implementation.
 */

#include "obs/json_writer.hh"

#include <charconv>
#include <cmath>
#include <cstring>

namespace dewrite::obs {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c; // UTF-8 passes through untouched.
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::FILE *out, bool pretty)
    : file_(out), pretty_(pretty), failed_(out == nullptr)
{
}

JsonWriter::JsonWriter(std::string *out, bool pretty)
    : sink_(out), pretty_(pretty), failed_(out == nullptr)
{
}

void
JsonWriter::raw(std::string_view text)
{
    if (failed_)
        return;
    if (file_) {
        if (std::fwrite(text.data(), 1, text.size(), file_) != text.size())
            failed_ = true;
    } else {
        sink_->append(text);
    }
}

void
JsonWriter::newlineIndent()
{
    if (!pretty_)
        return;
    raw("\n");
    for (std::size_t i = 0; i < stack_.size(); ++i)
        raw("  ");
}

void
JsonWriter::separate(bool is_key_or_element)
{
    if (stack_.empty())
        return;
    auto &[frame, count] = stack_.back();
    // Inside an object only keys separate; a value right after its key
    // follows the pending ": ".
    if (frame == Frame::Object && !is_key_or_element)
        return;
    if (count > 0)
        raw(",");
    ++count;
    newlineIndent();
}

void
JsonWriter::beginObject()
{
    if (keyPending_)
        keyPending_ = false;
    else
        separate(true);
    raw("{");
    stack_.emplace_back(Frame::Object, 0);
}

void
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back().first != Frame::Object ||
        keyPending_) {
        failed_ = true;
        return;
    }
    const bool had_members = stack_.back().second > 0;
    stack_.pop_back();
    if (had_members)
        newlineIndent();
    raw("}");
}

void
JsonWriter::beginArray()
{
    if (keyPending_)
        keyPending_ = false;
    else
        separate(true);
    raw("[");
    stack_.emplace_back(Frame::Array, 0);
}

void
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back().first != Frame::Array ||
        keyPending_) {
        failed_ = true;
        return;
    }
    const bool had_elements = stack_.back().second > 0;
    stack_.pop_back();
    if (had_elements)
        newlineIndent();
    raw("]");
}

void
JsonWriter::key(std::string_view name)
{
    if (stack_.empty() || stack_.back().first != Frame::Object ||
        keyPending_) {
        failed_ = true;
        return;
    }
    separate(true);
    raw("\"");
    raw(jsonEscape(name));
    raw(pretty_ ? "\": " : "\":");
    keyPending_ = true;
}

void
JsonWriter::value(std::string_view text)
{
    if (keyPending_)
        keyPending_ = false;
    else
        separate(true);
    raw("\"");
    raw(jsonEscape(text));
    raw("\"");
}

void
JsonWriter::value(double number)
{
    if (!std::isfinite(number)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        valueNull();
        return;
    }
    // The precision-free overload produces the shortest representation
    // that round-trips the exact double.
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, number);
    if (keyPending_)
        keyPending_ = false;
    else
        separate(true);
    raw(std::string_view(buf, static_cast<std::size_t>(res.ptr - buf)));
}

void
JsonWriter::value(std::uint64_t number)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof buf, number);
    if (keyPending_)
        keyPending_ = false;
    else
        separate(true);
    raw(std::string_view(buf, static_cast<std::size_t>(res.ptr - buf)));
}

void
JsonWriter::value(std::int64_t number)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof buf, number);
    if (keyPending_)
        keyPending_ = false;
    else
        separate(true);
    raw(std::string_view(buf, static_cast<std::size_t>(res.ptr - buf)));
}

void
JsonWriter::value(bool flag)
{
    if (keyPending_)
        keyPending_ = false;
    else
        separate(true);
    raw(flag ? "true" : "false");
}

void
JsonWriter::valueNull()
{
    if (keyPending_)
        keyPending_ = false;
    else
        separate(true);
    raw("null");
}

bool
JsonWriter::ok() const
{
    if (failed_ || keyPending_)
        return false;
    if (file_ && std::ferror(file_))
        return false;
    return true;
}

} // namespace dewrite::obs
