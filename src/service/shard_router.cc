/**
 * @file
 * ShardRouter implementation.
 */

#include "service/shard_router.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/env.hh"

namespace dewrite {

std::size_t
serviceShards()
{
    return static_cast<std::size_t>(
        envUint("DEWRITE_SHARDS", 1, 1, kMaxShards));
}

ShardRouter::ShardRouter(std::size_t shards, std::uint64_t tenants,
                         std::uint64_t lines_per_tenant)
    : shards_(shards), tenants_(tenants),
      linesPerTenant_(lines_per_tenant),
      globalLines_(tenants * lines_per_tenant),
      div_(static_cast<std::uint64_t>(shards))
{
    DEWRITE_CHECK(shards >= 1 && shards <= kMaxShards,
                  "shard count %zu outside 1..%zu", shards, kMaxShards);
    DEWRITE_CHECK(tenants >= 1, "service needs at least one tenant");
    DEWRITE_CHECK(lines_per_tenant >= 1,
                  "tenant namespaces need at least one line");
    shardLines_ = (globalLines_ - 1) / shards_ + 1;
}

SystemConfig
ShardRouter::shardConfig(const SystemConfig &base,
                         std::uint64_t max_events) const
{
    SystemConfig config = base;
    config.memory.numLines = shardLines_;
    if (config.memory.workingSetHintLines == 0) {
        // Same cap rule as runAppImpl: a shard fed N events writes at
        // most N distinct lines, so never reserve beyond that.
        config.memory.workingSetHintLines = std::min<std::uint64_t>(
            shardLines_, std::max<std::uint64_t>(max_events, 1024));
    }
    return config;
}

} // namespace dewrite
