/**
 * @file
 * NVM device tests: functional storage, timing, energy, wear.
 */

#include "nvm/nvm_device.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace dewrite {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.memory.numLines = 1 << 16;
    return config;
}

TEST(NvmDeviceTest, UnwrittenLinesReadZero)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    EXPECT_FALSE(device.isWritten(42));
    EXPECT_TRUE(device.read(42, 0).data.isZero());
}

TEST(NvmDeviceTest, WriteThenReadReturnsData)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    Rng rng(51);
    const Line data = Line::random(rng);
    device.write(7, data, 0);
    EXPECT_TRUE(device.isWritten(7));
    EXPECT_EQ(device.read(7, 1000000).data, data);
    EXPECT_EQ(device.peek(7), data);
}

TEST(NvmDeviceTest, ReadWriteLatenciesMatchConfig)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    const NvmTiming write = device.write(1, Line(), 0);
    EXPECT_EQ(write.latency(0), config.timing.nvmWrite);
    const NvmAccess read = device.read(2, 0); // Different bank.
    EXPECT_EQ(read.latency(0), config.timing.nvmRead);
}

TEST(NvmDeviceTest, SameBankSerializes)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    const unsigned banks = config.timing.numBanks;
    device.write(0, Line(), 0);
    // Address 'banks' maps to the same bank as address 0.
    const NvmAccess blocked = device.read(banks, 0);
    EXPECT_EQ(blocked.queueDelay, config.timing.nvmWrite);
    // A different bank proceeds immediately.
    const NvmAccess free = device.read(1, 0);
    EXPECT_EQ(free.queueDelay, 0u);
}

TEST(NvmDeviceTest, EnergyAccounting)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    device.write(0, Line(), 0); // Full line.
    EXPECT_EQ(device.totalEnergy(), config.energy.nvmWriteLine());
    // A read in a different row pays the full array access...
    const LineAddr far_row =
        config.timing.numBanks * config.timing.linesPerRow;
    device.read(far_row, 0);
    EXPECT_EQ(device.totalEnergy(),
              config.energy.nvmWriteLine() + config.energy.nvmReadLine());
    // ...while re-reading the open row costs only the sense path.
    device.read(far_row, 0);
    EXPECT_EQ(device.totalEnergy(),
              config.energy.nvmWriteLine() + config.energy.nvmReadLine() +
                  config.energy.nvmRowHitPerBit * kLineBits);
    EXPECT_EQ(device.rowBufferHits(), 1u);
}

TEST(NvmDeviceTest, RowBufferHitIsFaster)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    const NvmAccess cold = device.read(5, 0);
    EXPECT_EQ(cold.latency(0), config.timing.nvmRead);
    const NvmAccess hot = device.read(5, cold.complete);
    EXPECT_EQ(hot.latency(cold.complete), config.timing.nvmRowHit);
    // A neighbouring line of the same bank shares the row.
    const LineAddr neighbour = 5 + config.timing.numBanks;
    const NvmAccess same_row = device.read(neighbour, hot.complete);
    EXPECT_EQ(same_row.latency(hot.complete), config.timing.nvmRowHit);
}

TEST(NvmDeviceTest, WriteOpensRow)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    device.write(3, Line(), 0);
    const NvmAccess read = device.read(3, 10000000);
    EXPECT_EQ(read.latency(10000000), config.timing.nvmRowHit);
}

TEST(NvmDeviceTest, PartialBitWriteCostsLess)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    device.write(0, Line(), 0, 100);
    EXPECT_EQ(device.totalEnergy(), 100 * config.energy.nvmWritePerBit);
    EXPECT_EQ(device.wear().totalBitsWritten(), 100u);
}

TEST(NvmDeviceTest, WearTracksPerLine)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    device.write(5, Line(), 0);
    device.write(5, Line::filled(1), 0);
    device.write(6, Line(), 0);
    EXPECT_EQ(device.wear().lineWrites(5), 2u);
    EXPECT_EQ(device.wear().lineWrites(6), 1u);
    EXPECT_EQ(device.wear().totalWrites(), 3u);
    EXPECT_EQ(device.wear().maxLineWrites(), 2u);
    EXPECT_EQ(device.wear().linesTouched(), 2u);
}

TEST(NvmDeviceTest, OverwriteReplacesContent)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    device.write(3, Line::filled(0xaa), 0);
    device.write(3, Line::filled(0xbb), 0);
    EXPECT_EQ(device.peek(3), Line::filled(0xbb));
}

TEST(NvmDeviceTest, QueueDelayAggregation)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    device.write(0, Line(), 0);
    device.read(config.timing.numBanks, 0); // Same bank: waits.
    EXPECT_EQ(device.totalQueueDelay(), config.timing.nvmWrite);
}

TEST(AddressDecoderTest, LineInterleaveRotatesBanks)
{
    AddressDecoder decoder(8, 8, InterleavePolicy::Line);
    for (LineAddr addr = 0; addr < 16; ++addr)
        EXPECT_EQ(decoder.decode(addr).bank, addr % 8);
    EXPECT_EQ(decoder.decode(8).row, 1u);
}

TEST(AddressDecoderTest, RowInterleaveKeepsRowsTogether)
{
    AddressDecoder decoder(8, 8, InterleavePolicy::Row);
    // The first 8 lines share bank 0; the next 8 land on bank 1.
    for (LineAddr addr = 0; addr < 8; ++addr)
        EXPECT_EQ(decoder.decode(addr).bank, 0u);
    for (LineAddr addr = 8; addr < 16; ++addr)
        EXPECT_EQ(decoder.decode(addr).bank, 1u);
}

TEST(AddressDecoderTest, RowInterleaveRowsAreDistinctPerGroup)
{
    AddressDecoder decoder(4, 8, InterleavePolicy::Row);
    // Same bank, different row groups: lines 0 and 32 (4 banks x 8).
    const DecodedAddr first = decoder.decode(0);
    const DecodedAddr second = decoder.decode(32);
    EXPECT_EQ(first.bank, second.bank);
    EXPECT_NE(first.row / 8, second.row / 8);
}

TEST(NvmDeviceTest, RowInterleaveMakesSequentialReadsRowHits)
{
    SystemConfig config = smallConfig();
    config.timing.rowInterleave = true;
    NvmDevice device(config);
    const NvmAccess first = device.read(0, 0);
    EXPECT_EQ(first.latency(0), config.timing.nvmRead);
    // The next sequential lines share the bank's open row.
    Time now = first.complete;
    for (LineAddr addr = 1; addr < config.timing.linesPerRow; ++addr) {
        const NvmAccess access = device.read(addr, now);
        EXPECT_EQ(access.latency(now), config.timing.nvmRowHit)
            << "addr " << addr;
        now = access.complete;
    }
}

TEST(NvmDeviceTest, BackgroundWriteChargesEverythingButBankTime)
{
    SystemConfig config = smallConfig();
    NvmDevice device(config);
    device.writeBackground(5, Line::filled(7), 128);

    EXPECT_EQ(device.numWrites(), 1u);
    EXPECT_EQ(device.numBackgroundWrites(), 1u);
    EXPECT_EQ(device.totalEnergy(), 128 * config.energy.nvmWritePerBit);
    EXPECT_EQ(device.wear().lineWrites(5), 1u);
    EXPECT_EQ(device.peek(5), Line::filled(7));
    // No bank was occupied: a read to the same bank starts at once.
    const NvmAccess read = device.read(5, 0);
    EXPECT_EQ(read.queueDelay, 0u);
}

TEST(WearTrackerTest, RelativeLifetimeScalesInversely)
{
    WearTracker heavy;
    WearTracker light;
    for (int i = 0; i < 100; ++i)
        heavy.recordWrite(i, kLineBits);
    for (int i = 0; i < 50; ++i)
        light.recordWrite(i, kLineBits);
    EXPECT_DOUBLE_EQ(light.relativeLifetime(1000, 10) /
                         heavy.relativeLifetime(1000, 10),
                     2.0);
}

} // namespace
} // namespace dewrite
