/**
 * @file
 * MD5 (RFC 1321) and SHA-1 (FIPS 180-1) tests against published
 * vectors, plus Fingerprinter behaviour.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/crc32.hh"
#include "common/rng.hh"
#include "crypto/md5.hh"
#include "crypto/sha1.hh"
#include "dedup/fingerprint.hh"

namespace dewrite {
namespace {

template <std::size_t N>
std::string
toHex(const std::array<std::uint8_t, N> &digest)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    for (std::uint8_t byte : digest) {
        out += hex[byte >> 4];
        out += hex[byte & 0xf];
    }
    return out;
}

const std::uint8_t *
bytes(const char *s)
{
    return reinterpret_cast<const std::uint8_t *>(s);
}

TEST(Md5Test, Rfc1321Vectors)
{
    EXPECT_EQ(toHex(md5(bytes(""), 0)),
              "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(toHex(md5(bytes("a"), 1)),
              "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(toHex(md5(bytes("abc"), 3)),
              "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(toHex(md5(bytes("message digest"), 14)),
              "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(toHex(md5(bytes("abcdefghijklmnopqrstuvwxyz"), 26)),
              "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Md5Test, PaddingBoundaries)
{
    // 55, 56, and 64 bytes hit the one-vs-two-block padding edges.
    const std::string s55(55, 'x');
    const std::string s56(56, 'x');
    const std::string s64(64, 'x');
    EXPECT_NE(toHex(md5(bytes(s55.c_str()), 55)),
              toHex(md5(bytes(s56.c_str()), 56)));
    EXPECT_NE(toHex(md5(bytes(s56.c_str()), 56)),
              toHex(md5(bytes(s64.c_str()), 64)));
    // Against a reference value for the 64-byte (two-block) case,
    // cross-checked with Python hashlib.
    EXPECT_EQ(toHex(md5(bytes(s64.c_str()), 64)),
              "c1bb4f81d892b2d57947682aeb252456");
}

TEST(Sha1Test, Fips180Vectors)
{
    EXPECT_EQ(toHex(sha1(bytes("abc"), 3)),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(
        toHex(sha1(bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmn"
                         "omnopnopq"),
                   56)),
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
    EXPECT_EQ(toHex(sha1(bytes(""), 0)),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, MillionAs)
{
    // FIPS 180-1's third vector: one million repetitions of 'a'.
    std::string input(1000000, 'a');
    EXPECT_EQ(toHex(sha1(bytes(input.c_str()), input.size())),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(FingerprinterTest, Crc32MatchesDirectCall)
{
    Rng rng(151);
    const Line line = Line::random(rng);
    const Fingerprinter fp(HashFunction::Crc32);
    EXPECT_EQ(fp.fingerprint(line), crc32(line));
    EXPECT_FALSE(fp.cryptographic());
    EXPECT_EQ(fp.digestBits(), 32u);
}

TEST(FingerprinterTest, CryptoPrefixesMatchDigests)
{
    Rng rng(152);
    const Line line = Line::random(rng);

    const Md5Digest md = md5(line.data(), kLineSize);
    std::uint64_t md_prefix;
    std::memcpy(&md_prefix, md.data(), 8);
    EXPECT_EQ(Fingerprinter(HashFunction::Md5).fingerprint(line),
              md_prefix);

    const Sha1Digest sd = sha1(line.data(), kLineSize);
    std::uint64_t sd_prefix;
    std::memcpy(&sd_prefix, sd.data(), 8);
    EXPECT_EQ(Fingerprinter(HashFunction::Sha1).fingerprint(line),
              sd_prefix);
}

TEST(FingerprinterTest, LatenciesFollowTableIa)
{
    EXPECT_EQ(Fingerprinter(HashFunction::Crc32).latency(),
              15u * kNanoSecond);
    EXPECT_EQ(Fingerprinter(HashFunction::Md5).latency(),
              312u * kNanoSecond);
    EXPECT_EQ(Fingerprinter(HashFunction::Sha1).latency(),
              321u * kNanoSecond);
    EXPECT_TRUE(Fingerprinter(HashFunction::Md5).cryptographic());
}

TEST(FingerprinterTest, DistinctContentDistinctFingerprints)
{
    Rng rng(153);
    for (HashFunction fn : { HashFunction::Crc32, HashFunction::Md5,
                             HashFunction::Sha1 }) {
        const Fingerprinter fp(fn);
        const Line a = Line::random(rng);
        Line b = a;
        b.setByte(100, b.byte(100) ^ 1);
        EXPECT_NE(fp.fingerprint(a), fp.fingerprint(b));
        EXPECT_EQ(fp.fingerprint(a), fp.fingerprint(a));
    }
}

} // namespace
} // namespace dewrite
