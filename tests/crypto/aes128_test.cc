/**
 * @file
 * AES-128 tests against FIPS-197 vectors plus T-table/reference
 * equivalence.
 */

#include "crypto/aes128.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace dewrite {
namespace {

AesBlock
blockFromHex(const char *hex)
{
    AesBlock block{};
    for (int i = 0; i < 16; ++i) {
        auto nibble = [&](char c) -> std::uint8_t {
            if (c >= '0' && c <= '9')
                return static_cast<std::uint8_t>(c - '0');
            return static_cast<std::uint8_t>(c - 'a' + 10);
        };
        block[i] = static_cast<std::uint8_t>(
            (nibble(hex[2 * i]) << 4) | nibble(hex[2 * i + 1]));
    }
    return block;
}

TEST(Aes128Test, Fips197AppendixCVector)
{
    const Aes128 aes(blockFromHex("000102030405060708090a0b0c0d0e0f"));
    const AesBlock pt = blockFromHex("00112233445566778899aabbccddeeff");
    const AesBlock expected =
        blockFromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
    EXPECT_EQ(aes.encryptBlock(pt), expected);
}

TEST(Aes128Test, Fips197AppendixBVector)
{
    const Aes128 aes(blockFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    const AesBlock pt = blockFromHex("3243f6a8885a308d313198a2e0370734");
    const AesBlock expected =
        blockFromHex("3925841d02dc09fbdc118597196a0b32");
    EXPECT_EQ(aes.encryptBlock(pt), expected);
}

TEST(Aes128Test, DecryptInvertsEncrypt)
{
    const Aes128 aes(blockFromHex("000102030405060708090a0b0c0d0e0f"));
    Rng rng(21);
    for (int trial = 0; trial < 50; ++trial) {
        AesBlock pt;
        for (auto &byte : pt)
            byte = static_cast<std::uint8_t>(rng.next64());
        EXPECT_EQ(aes.decryptBlock(aes.encryptBlock(pt)), pt);
    }
}

TEST(Aes128Test, TTableMatchesReferenceImplementation)
{
    Rng rng(22);
    for (int trial = 0; trial < 200; ++trial) {
        AesKey key;
        for (auto &byte : key)
            byte = static_cast<std::uint8_t>(rng.next64());
        const Aes128 aes(key);
        AesBlock pt;
        for (auto &byte : pt)
            byte = static_cast<std::uint8_t>(rng.next64());
        EXPECT_EQ(aes.encryptBlock(pt), aes.encryptBlockReference(pt));
    }
}

TEST(Aes128Test, DispatchedDecryptMatchesReferenceImplementation)
{
    // Exercises the AES-NI equivalent-inverse-cipher path (when the
    // host has it) against the portable InvMixColumns decrypt across
    // random keys, since FIPS-197 only pins one decrypt vector.
    Rng rng(24);
    for (int trial = 0; trial < 200; ++trial) {
        AesKey key;
        for (auto &byte : key)
            byte = static_cast<std::uint8_t>(rng.next64());
        const Aes128 aes(key);
        AesBlock ct;
        for (auto &byte : ct)
            byte = static_cast<std::uint8_t>(rng.next64());
        EXPECT_EQ(aes.decryptBlock(ct), aes.decryptBlockReference(ct));
    }
}

TEST(Aes128Test, Fips197DecryptVector)
{
    const Aes128 aes(blockFromHex("000102030405060708090a0b0c0d0e0f"));
    const AesBlock ct = blockFromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
    const AesBlock expected =
        blockFromHex("00112233445566778899aabbccddeeff");
    EXPECT_EQ(aes.decryptBlock(ct), expected);
    EXPECT_EQ(aes.decryptBlockReference(ct), expected);
}

TEST(Aes128Test, DifferentKeysDifferentCiphertext)
{
    const AesBlock pt{};
    const Aes128 a(blockFromHex("00000000000000000000000000000000"));
    const Aes128 b(blockFromHex("00000000000000000000000000000001"));
    EXPECT_NE(a.encryptBlock(pt), b.encryptBlock(pt));
}

TEST(Aes128Test, DiffusionProperty)
{
    // The property that breaks DCW/FNW on encrypted NVMM (Section I):
    // one flipped plaintext bit changes ~half the ciphertext bits.
    const Aes128 aes(blockFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    Rng rng(23);
    int total_diff = 0;
    const int trials = 100;
    for (int trial = 0; trial < trials; ++trial) {
        AesBlock pt;
        for (auto &byte : pt)
            byte = static_cast<std::uint8_t>(rng.next64());
        AesBlock pt2 = pt;
        pt2[rng.nextBelow(16)] ^=
            static_cast<std::uint8_t>(1u << rng.nextBelow(8));
        const AesBlock c1 = aes.encryptBlock(pt);
        const AesBlock c2 = aes.encryptBlock(pt2);
        for (int i = 0; i < 16; ++i)
            total_diff += std::popcount(
                static_cast<unsigned>(c1[i] ^ c2[i]));
    }
    const double avg_fraction =
        static_cast<double>(total_diff) / (trials * 128);
    EXPECT_NEAR(avg_fraction, 0.5, 0.03);
}

} // namespace
} // namespace dewrite
