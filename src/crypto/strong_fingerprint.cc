/**
 * @file
 * Strong-fingerprint kernel implementation.
 *
 * Construction (identical in both kernels):
 *
 *   S[j]  = INIT[j]                       for lanes j = 0..3
 *   S[i&3] = AESENC(S[i&3], B[i])         for blocks i = 0..15
 *   T     = AESENC(AESENC(AESENC(S0, S1), S2), S3)
 *   T     = AESENC(T, FIN[r])             for r = 0..2
 *   result = T
 *
 * where AESENC is one full AES round (SubBytes, ShiftRows, MixColumns,
 * AddRoundKey) exactly as _mm_aesenc_si128 computes it, B[i] is the
 * i-th 16-byte block of the line in memory order, and INIT/FIN are
 * fixed public constants. Each lane runs four data-keyed rounds; the
 * merge and finalization push every block through at least three more,
 * so any single-bit input change avalanches across the whole result.
 *
 * The software round function regenerates the AES S-box from the field
 * inverse at static-initialization time (same approach as aes128.cc)
 * rather than pasting a table.
 */

#include "crypto/strong_fingerprint.hh"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DEWRITE_X86 1
#endif

namespace dewrite {

namespace {

/**
 * Fixed lane-init and finalization constants: byte strings with no
 * structure the absorption could cancel (hex digits of well-known
 * irrational constants, as in the usual nothing-up-my-sleeve style).
 */
alignas(16) constexpr std::uint8_t kInit[4][16] = {
    { 0x24, 0x3f, 0x6a, 0x88, 0x85, 0xa3, 0x08, 0xd3, // pi
      0x13, 0x19, 0x8a, 0x2e, 0x03, 0x70, 0x73, 0x44 },
    { 0xa4, 0x09, 0x38, 0x22, 0x29, 0x9f, 0x31, 0xd0, // pi (cont.)
      0x08, 0x2e, 0xfa, 0x98, 0xec, 0x4e, 0x6c, 0x89 },
    { 0x45, 0x28, 0x21, 0xe6, 0x38, 0xd0, 0x13, 0x77, // pi (cont.)
      0xbe, 0x54, 0x66, 0xcf, 0x34, 0xe9, 0x0c, 0x6c },
    { 0xc0, 0xac, 0x29, 0xb7, 0xc9, 0x7c, 0x50, 0xdd, // pi (cont.)
      0x3f, 0x84, 0xd5, 0xb5, 0xb5, 0x47, 0x09, 0x17 },
};

alignas(16) constexpr std::uint8_t kFinal[3][16] = {
    { 0x9e, 0x37, 0x79, 0xb9, 0x7f, 0x4a, 0x7c, 0x15, // golden ratio
      0xf3, 0x9c, 0xc0, 0x60, 0x5c, 0xed, 0xc8, 0x34 },
    { 0x10, 0x82, 0x27, 0x6b, 0xf3, 0xa2, 0x72, 0x51, // golden (cont.)
      0xf8, 0x6c, 0x6a, 0x11, 0xd0, 0xc1, 0x8e, 0x95 },
    { 0x27, 0x67, 0xf0, 0xb1, 0x53, 0xd2, 0x7b, 0x7f, // golden (cont.)
      0x03, 0x47, 0x04, 0x5b, 0x5b, 0xf1, 0x82, 0x7f },
};

/** GF(2^8) multiply with the AES reduction polynomial 0x11b. */
std::uint8_t
gfMul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t result = 0;
    while (b) {
        if (b & 1)
            result ^= a;
        const bool high = a & 0x80;
        a <<= 1;
        if (high)
            a ^= 0x1b;
        b >>= 1;
    }
    return result;
}

/** The forward AES S-box, generated once at static init. */
struct SBox
{
    std::uint8_t fwd[256];

    SBox()
    {
        std::uint8_t inverse[256] = {};
        for (int a = 1; a < 256; ++a) {
            for (int b = 1; b < 256; ++b) {
                if (gfMul(static_cast<std::uint8_t>(a),
                          static_cast<std::uint8_t>(b)) == 1) {
                    inverse[a] = static_cast<std::uint8_t>(b);
                    break;
                }
            }
        }
        for (int x = 0; x < 256; ++x) {
            const std::uint8_t i = inverse[x];
            std::uint8_t s = 0;
            for (int bit = 0; bit < 8; ++bit) {
                const int v = ((i >> bit) & 1) ^
                              ((i >> ((bit + 4) % 8)) & 1) ^
                              ((i >> ((bit + 5) % 8)) & 1) ^
                              ((i >> ((bit + 6) % 8)) & 1) ^
                              ((i >> ((bit + 7) % 8)) & 1) ^
                              ((0x63 >> bit) & 1);
                s |= static_cast<std::uint8_t>(v << bit);
            }
            fwd[x] = s;
        }
    }
};

const SBox kSBox;

/**
 * One full AES encryption round on a 16-byte state in memory order —
 * bit-identical to _mm_aesenc_si128(state, key). State byte s[r + 4c]
 * is row r, column c of the FIPS-197 state (column-major, matching
 * the little-endian __m128i load).
 */
void
aesencSoft(std::uint8_t state[16], const std::uint8_t key[16])
{
    // SubBytes + ShiftRows in one gather.
    std::uint8_t t[16];
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c)
            t[r + 4 * c] = kSBox.fwd[state[r + 4 * ((c + r) % 4)]];
    }
    // MixColumns + AddRoundKey.
    for (int c = 0; c < 4; ++c) {
        const std::uint8_t a0 = t[4 * c + 0], a1 = t[4 * c + 1];
        const std::uint8_t a2 = t[4 * c + 2], a3 = t[4 * c + 3];
        state[4 * c + 0] = static_cast<std::uint8_t>(
            gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3 ^ key[4 * c + 0]);
        state[4 * c + 1] = static_cast<std::uint8_t>(
            a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3 ^ key[4 * c + 1]);
        state[4 * c + 2] = static_cast<std::uint8_t>(
            a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3) ^ key[4 * c + 2]);
        state[4 * c + 3] = static_cast<std::uint8_t>(
            gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2) ^ key[4 * c + 3]);
    }
}

bool
cpuHasAesni()
{
#ifdef DEWRITE_X86
    return __builtin_cpu_supports("aes") &&
           __builtin_cpu_supports("sse2");
#else
    return false;
#endif
}

const bool kUseAesni = cpuHasAesni();

#ifdef DEWRITE_X86

// dewrite-lint: hot
__attribute__((target("aes,sse2"))) StrongFp
fingerprintAesni(const Line &line)
{
    const auto *blocks =
        reinterpret_cast<const __m128i *>(line.data());
    __m128i s0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(kInit[0]));
    __m128i s1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(kInit[1]));
    __m128i s2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(kInit[2]));
    __m128i s3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(kInit[3]));

    // Four independent lanes keep the pipelined AES unit busy the same
    // way the 8-wide pad kernel does (aes128.cc).
    for (int i = 0; i < 4; ++i) {
        s0 = _mm_aesenc_si128(s0, _mm_loadu_si128(blocks + 4 * i + 0));
        s1 = _mm_aesenc_si128(s1, _mm_loadu_si128(blocks + 4 * i + 1));
        s2 = _mm_aesenc_si128(s2, _mm_loadu_si128(blocks + 4 * i + 2));
        s3 = _mm_aesenc_si128(s3, _mm_loadu_si128(blocks + 4 * i + 3));
    }

    __m128i t = _mm_aesenc_si128(s0, s1);
    t = _mm_aesenc_si128(t, s2);
    t = _mm_aesenc_si128(t, s3);
    t = _mm_aesenc_si128(
        t, _mm_loadu_si128(reinterpret_cast<const __m128i *>(kFinal[0])));
    t = _mm_aesenc_si128(
        t, _mm_loadu_si128(reinterpret_cast<const __m128i *>(kFinal[1])));
    t = _mm_aesenc_si128(
        t, _mm_loadu_si128(reinterpret_cast<const __m128i *>(kFinal[2])));

    alignas(16) std::uint8_t out[16];
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out), t);
    StrongFp fp;
    std::memcpy(&fp.lo, out, 8);
    std::memcpy(&fp.hi, out + 8, 8);
    return fp;
}

#endif // DEWRITE_X86

// dewrite-lint: hot
StrongFp
fingerprintSoft(const Line &line)
{
    std::uint8_t s[4][16];
    std::memcpy(s[0], kInit[0], 16);
    std::memcpy(s[1], kInit[1], 16);
    std::memcpy(s[2], kInit[2], 16);
    std::memcpy(s[3], kInit[3], 16);

    for (int i = 0; i < 16; ++i)
        aesencSoft(s[i & 3], line.data() + 16 * i);

    aesencSoft(s[0], s[1]);
    aesencSoft(s[0], s[2]);
    aesencSoft(s[0], s[3]);
    aesencSoft(s[0], kFinal[0]);
    aesencSoft(s[0], kFinal[1]);
    aesencSoft(s[0], kFinal[2]);

    StrongFp fp;
    std::memcpy(&fp.lo, s[0], 8);
    std::memcpy(&fp.hi, s[0] + 8, 8);
    return fp;
}

} // namespace

// dewrite-lint: hot
StrongFp
strongFingerprint(const Line &line)
{
#ifdef DEWRITE_X86
    if (kUseAesni)
        return fingerprintAesni(line);
#endif
    return fingerprintSoft(line);
}

StrongFp
strongFingerprintReference(const Line &line)
{
    return fingerprintSoft(line);
}

bool
strongFingerprintUsesAesni()
{
    return kUseAesni;
}

} // namespace dewrite
