/**
 * @file
 * Parallel experiment runner implementation.
 */

#include "sim/parallel_runner.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/json_writer.hh"
#include "sim/thread_pool.hh"

namespace dewrite {

namespace {

using ProfileClock = std::chrono::steady_clock;

double
secondsBetween(ProfileClock::time_point from, ProfileClock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

} // namespace

double
RunnerProfile::busySeconds() const
{
    double total = 0.0;
    for (const CellProfile &cell : cells)
        total += cell.wallSeconds;
    return total;
}

double
RunnerProfile::utilization() const
{
    if (threads == 0 || wallSeconds <= 0.0)
        return 0.0;
    return std::min(1.0, busySeconds() / (threads * wallSeconds));
}

double
RunnerProfile::maxCellSeconds() const
{
    double worst = 0.0;
    for (const CellProfile &cell : cells)
        worst = std::max(worst, cell.wallSeconds);
    return worst;
}

void
RunnerProfile::writeJson(obs::JsonWriter &w) const
{
    w.beginObject();
    w.field("threads", threads);
    w.field("wall_seconds", wallSeconds);
    w.field("busy_seconds", busySeconds());
    w.field("utilization", utilization());
    w.field("max_cell_seconds", maxCellSeconds());
    w.key("worker_busy_seconds");
    w.beginArray();
    for (double busy : workerBusySeconds)
        w.value(busy);
    w.endArray();
    w.key("cells");
    w.beginArray();
    for (const CellProfile &cell : cells) {
        w.beginObject();
        w.field("queue_seconds", cell.queueSeconds);
        w.field("wall_seconds", cell.wallSeconds);
        w.field("worker", cell.worker);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

unsigned
runnerThreads()
{
    if (const std::uint64_t parsed = envUint("DEWRITE_THREADS", 0, 1,
                                             4096)) {
        return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
parallelFor(std::size_t count,
            const std::function<void(std::size_t)> &body,
            unsigned threads)
{
    if (count == 0)
        return;
    const unsigned workers = threads ? threads : runnerThreads();

    // One worker (or one task) degenerates to the plain serial loop —
    // same code path the determinism tests compare against.
    if (workers == 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    ThreadPool pool(workers);
    for (std::size_t i = 0; i < count; ++i)
        pool.submit([&body, i] { body(i); });
    pool.wait();
}

void
parallelForProfiled(std::size_t count,
                    const std::function<void(std::size_t)> &body,
                    RunnerProfile &profile, unsigned threads)
{
    const unsigned workers = threads ? threads : runnerThreads();
    const bool serial = workers == 1 || count <= 1;

    profile = RunnerProfile();
    profile.threads = serial ? 1 : workers;
    profile.cells.assign(count, CellProfile());
    profile.workerBusySeconds.assign(profile.threads, 0.0);
    if (count == 0)
        return;

    const ProfileClock::time_point begin = ProfileClock::now();

    if (serial) {
        for (std::size_t i = 0; i < count; ++i) {
            const ProfileClock::time_point start = ProfileClock::now();
            body(i);
            CellProfile &cell = profile.cells[i];
            cell.wallSeconds =
                secondsBetween(start, ProfileClock::now());
            cell.worker = 0;
            profile.workerBusySeconds[0] += cell.wallSeconds;
        }
        profile.wallSeconds =
            secondsBetween(begin, ProfileClock::now());
        return;
    }

    std::vector<ProfileClock::time_point> submitted(count);
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < count; ++i) {
        submitted[i] = ProfileClock::now();
        pool.submit([&body, &profile, &submitted, i] {
            const ProfileClock::time_point start = ProfileClock::now();
            body(i);
            const ProfileClock::time_point end = ProfileClock::now();

            // Each worker index is only ever written by its own
            // thread, so the per-worker accumulation is race-free.
            CellProfile &cell = profile.cells[i];
            cell.queueSeconds = secondsBetween(submitted[i], start);
            cell.wallSeconds = secondsBetween(start, end);
            cell.worker = ThreadPool::currentWorker();
            if (cell.worker >= 0 &&
                static_cast<std::size_t>(cell.worker) <
                    profile.workerBusySeconds.size()) {
                profile.workerBusySeconds[cell.worker] +=
                    cell.wallSeconds;
            }
        });
    }
    pool.wait();
    profile.wallSeconds = secondsBetween(begin, ProfileClock::now());
}

std::vector<ExperimentResult>
runMatrix(const std::vector<AppProfile> &apps,
          const std::vector<SchemeOptions> &schemes,
          const SystemConfig &config, std::uint64_t max_events,
          unsigned threads)
{
    const std::uint64_t events =
        max_events ? max_events : experimentEvents();
    std::vector<ExperimentResult> results(apps.size() * schemes.size());
    parallelFor(
        results.size(),
        [&](std::size_t cell) {
            const std::size_t a = cell / schemes.size();
            const std::size_t s = cell % schemes.size();
            results[cell] = runApp(apps[a], config, schemes[s], events,
                                   appSeed(apps[a]));
        },
        threads);
    return results;
}

std::vector<ExperimentResult>
runMatrixProfiled(const std::vector<AppProfile> &apps,
                  const std::vector<SchemeOptions> &schemes,
                  const SystemConfig &config, RunnerProfile &profile,
                  std::uint64_t max_events, unsigned threads)
{
    const std::uint64_t events =
        max_events ? max_events : experimentEvents();
    std::vector<ExperimentResult> results(apps.size() * schemes.size());
    parallelForProfiled(
        results.size(),
        [&](std::size_t cell) {
            const std::size_t a = cell / schemes.size();
            const std::size_t s = cell % schemes.size();
            results[cell] = runApp(apps[a], config, schemes[s], events,
                                   appSeed(apps[a]));
        },
        profile, threads);
    return results;
}

} // namespace dewrite
