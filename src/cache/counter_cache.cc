/**
 * @file
 * CounterCache implementation.
 */

#include "cache/counter_cache.hh"

#include "nvm/nvm_device.hh"

namespace dewrite {

CounterCache::CounterCache(const SystemConfig &config, NvmDevice &device,
                           LineAddr region_base)
    : config_(config), device_(device),
      directory_(config.memory.counterCacheBytes / kLineSize),
      base_(region_base),
      regionLines_((config.memory.numLines + kEntriesPerLine - 1) /
                   kEntriesPerLine)
{
}

MetadataAccessResult
CounterCache::access(LineAddr addr, bool is_write, Time now)
{
    const std::uint64_t block = addr / kEntriesPerLine;

    MetadataAccessResult result;
    result.latency = config_.timing.metadataCacheAccess;
    energy_ += config_.energy.metadataCacheAccess;

    if (directory_.access(block, is_write)) {
        result.hit = true;
        return result;
    }

    // Counter lines are stored raw (they are not secret), so a fill is
    // one NVM read with no decryption step.
    const NvmTiming fill =
        device_.readTimed(base_ + block % regionLines_, now);
    result.latency += fill.complete - now;
    ++result.nvmReads;

    const CacheEviction eviction = directory_.insert(block, is_write);
    if (eviction.valid && eviction.dirty) {
        // Counter writebacks drain lazily like the dedup metadata's
        // (the cache is battery-backed in both designs).
        device_.writeBackgroundZero(base_ + eviction.key % regionLines_,
                                    kAesBlockSize * 8);
        ++result.nvmWrites;
    }

    return result;
}

} // namespace dewrite
