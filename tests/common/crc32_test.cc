/**
 * @file
 * CRC-32 unit tests, anchored to published check values.
 */

#include "common/crc32.hh"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"

namespace dewrite {
namespace {

TEST(Crc32Test, StandardCheckValue)
{
    // The canonical CRC-32 check: crc32("123456789") == 0xcbf43926.
    const char *msg = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(msg),
                    std::strlen(msg)),
              0xcbf43926u);
}

TEST(Crc32Test, EmptyInput)
{
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, KnownSingleByte)
{
    const std::uint8_t byte = 0x00;
    EXPECT_EQ(crc32(&byte, 1), 0xd202ef8du);
}

TEST(Crc32Test, LineOverloadMatchesBufferOverload)
{
    Rng rng(11);
    const Line line = Line::random(rng);
    EXPECT_EQ(crc32(line), crc32(line.data(), kLineSize));
}

TEST(Crc32Test, SensitiveToEveryBytePosition)
{
    Line base;
    const std::uint32_t h0 = crc32(base);
    for (std::size_t i = 0; i < kLineSize; i += 17) {
        Line tweaked = base;
        tweaked.setByte(i, 1);
        EXPECT_NE(crc32(tweaked), h0) << "byte " << i;
    }
}

TEST(Crc32Test, DeterministicAcrossCalls)
{
    Rng rng(12);
    const Line line = Line::random(rng);
    EXPECT_EQ(crc32(line), crc32(line));
}

} // namespace
} // namespace dewrite
